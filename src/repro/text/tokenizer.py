"""Word-level tokenizer with digit splitting.

Numbers are split into single-digit tokens ("42" -> "4", "2"), the
standard trick that makes small language models able to learn
arithmetic — essential for the GSM8k-style reasoning tasks where the
paper studies intermediate-token corruption (Fig. 12).
"""

from __future__ import annotations

import re

from repro.text.vocab import EOS, Vocab

__all__ = ["Tokenizer", "normalize_text"]

_PUNCT = re.compile(r"([.,?!:;=+\-*/()])")
_WS = re.compile(r"\s+")
_DIGIT_RUN = re.compile(r"(?<=\d) (?=\d)")


def normalize_text(text: str) -> str:
    """Lowercase, isolate punctuation, collapse whitespace."""
    text = _PUNCT.sub(r" \1 ", text.lower())
    return _WS.sub(" ", text).strip()


class Tokenizer:
    """Reversible word-level tokenizer over a :class:`Vocab`."""

    def __init__(self, vocab: Vocab) -> None:
        self.vocab = vocab

    def tokenize(self, text: str) -> list[str]:
        """Split text into vocabulary tokens (digits become single tokens)."""
        out: list[str] = []
        for word in normalize_text(text).split(" "):
            if not word:
                continue
            if word.isdigit():
                out.extend(word)
            elif word.startswith("<") and word.endswith(">"):
                out.append(word)  # special token passthrough
            else:
                out.append(word)
        return out

    def encode(self, text: str, add_eos: bool = False) -> list[int]:
        """Text to token ids (optionally terminated with ``<eos>``)."""
        ids = [self.vocab.id(t) for t in self.tokenize(text)]
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: list[int], merge_digits: bool = True) -> str:
        """Ids back to text; adjacent digit tokens re-merge into numbers."""
        words = []
        for i in ids:
            token = self.vocab.token(int(i))
            if token == EOS:
                break
            words.append(token)
        text = " ".join(words)
        if merge_digits:
            text = _DIGIT_RUN.sub("", text)
        return text

    def __len__(self) -> int:
        return len(self.vocab)
