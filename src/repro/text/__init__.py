"""Text substrate: vocabulary and tokenizer."""

from repro.text.tokenizer import Tokenizer, normalize_text
from repro.text.vocab import BOS, EOS, PAD, SEP, SPECIAL_TOKENS, UNK, Vocab

__all__ = [
    "BOS",
    "EOS",
    "PAD",
    "SEP",
    "SPECIAL_TOKENS",
    "Tokenizer",
    "UNK",
    "Vocab",
    "normalize_text",
]
