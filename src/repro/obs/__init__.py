"""repro.obs — end-to-end telemetry for the resilience study.

Zero-dependency observability layer: nestable tracing spans with a
no-op fast path, a metrics registry (counters / gauges / p50-p95-p99
histograms), JSONL run export with a provenance manifest, and a text
reporter (``python -m repro obs report run.jsonl``).

The study's scale (thousands of injection trials per campaign cell)
makes silent failures and unexplained slowdowns expensive; every hot
path — engine forwards, per-layer outputs, the generation loop,
campaign trials (including process-pool workers) — reports here when
telemetry is enabled, and costs one attribute check when it is not.
"""

from repro.obs.export import (
    JsonlWriter,
    RunData,
    read_jsonl,
    read_run,
    write_run,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    explain_run,
    explain_trial,
    first_divergence,
    flight_recorder,
    flight_records,
)
from repro.obs.instrument import attach_layer_timing
from repro.obs.manifest import (
    TELEMETRY_SCHEMA_VERSION,
    SchemaMismatchError,
    build_manifest,
    check_schema,
    config_hash,
    git_revision,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_comparison, render_report, report_path
from repro.obs.runtime import Telemetry, disable, enable, log_line, telemetry
from repro.obs.trace import SpanRecord, Tracer
from repro.obs.traceview import chrome_trace, export_trace
from repro.obs.watch import WatchState, watch

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricsRegistry",
    "RunData",
    "SchemaMismatchError",
    "SpanRecord",
    "Telemetry",
    "Tracer",
    "WatchState",
    "attach_layer_timing",
    "build_manifest",
    "check_schema",
    "chrome_trace",
    "config_hash",
    "disable",
    "enable",
    "explain_run",
    "explain_trial",
    "export_trace",
    "first_divergence",
    "flight_recorder",
    "flight_records",
    "git_revision",
    "log_line",
    "read_jsonl",
    "read_run",
    "render_comparison",
    "render_report",
    "report_path",
    "telemetry",
    "watch",
    "write_run",
]
