"""Metrics registry: counters, gauges, and quantile histograms.

Instruments are created lazily by name (``registry.counter("x")``) so
instrumentation sites need no setup.  Histograms keep raw observations
and compute quantiles over the *sorted* values, which makes merged
results independent of observation order — the property the campaign
runner relies on to merge worker telemetry deterministically.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count (trials run, tokens generated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase (got {amount})")
        self.value += amount


class Gauge:
    """Last-written value (KV-cache occupancy, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Raw-observation histogram with order-independent quantiles."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile over the sorted observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict:
        """count/mean/min/p50/p95/p99/max — the reporter's row format."""
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "mean": self.mean,
            "min": ordered[0],
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Named instruments plus snapshot/merge for multiprocess runs."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- lazy instrument access ----------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            instrument = self.counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            instrument = self.gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            instrument = self.histograms[name] = Histogram()
            return instrument

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument's raw state."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: list(h.values) for k, h in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters sum, gauges last-write-wins,
        histogram observations concatenate (quantiles sort internally,
        so the merged registry is invariant to merge order for
        counters/histograms; callers merge worker snapshots in chunk
        order so gauges are deterministic too)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in snapshot.get("histograms", {}).items():
            self.histogram(name).values.extend(values)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
