"""Instrumentation helpers that attach telemetry to the engine.

Per-layer timing rides the engine's existing :class:`HookManager`
mechanism — the same interception point fault injectors use — so the
measurement sees exactly the layer boundaries the study injects at.
Each hook observes the wall time from the previous layer's output (or
the start of the forward, whichever is later) to its own output; the
deltas tile the forward pass, so summed layer times ≈ forward time.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["attach_layer_timing"]


def attach_layer_timing(engine, telemetry=None) -> Callable[[], None]:
    """Register timing hooks on every faultable linear layer.

    Returns a single detach handle removing all hooks.  Histograms are
    keyed ``engine.layer_ms.<full_layer_name>`` in the telemetry's
    metrics registry.
    """
    from repro.obs.runtime import telemetry as _global_telemetry

    tel = telemetry or _global_telemetry()
    registry = tel.metrics
    state = {"last": 0.0}

    def timing_hook(output, ctx):
        now = time.perf_counter()
        base = max(state["last"], tel.marks.get("forward_start", 0.0))
        if base > 0.0:
            registry.histogram(f"engine.layer_ms.{ctx.full_name}").observe(
                (now - base) * 1e3
            )
        state["last"] = now
        return None

    # Row-scoped + observer: a pure probe is safe to apply per batch
    # row (traced runs keep continuous-batched decoding) and never
    # perturbs outputs (traced runs keep speculative decoding).  Under
    # a batched step the first row's delta carries the layer cost and
    # later rows observe ~0; the deltas still tile the forward pass.
    handles = [
        engine.hooks.register(name, timing_hook, row_scoped=True, observer=True)
        for name in engine.linear_layer_names()
    ]

    def detach() -> None:
        for handle in handles:
            handle()

    return detach
