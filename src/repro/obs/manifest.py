"""Run manifests: the provenance header of every telemetry stream.

A manifest pins everything needed to reproduce (or refuse to misparse)
a run: the telemetry schema version, campaign seed, a hash of the run
configuration, the git revision, package versions and timestamps.
``TELEMETRY_SCHEMA_VERSION`` must be bumped whenever the JSONL record
shapes change; loaders assert it so stale files fail loudly instead of
silently misparsing.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "SchemaMismatchError",
    "config_hash",
    "git_revision",
    "build_manifest",
    "check_schema",
]

TELEMETRY_SCHEMA_VERSION = 1


class SchemaMismatchError(RuntimeError):
    """A telemetry file was written under an incompatible schema."""


def config_hash(config: dict) -> str:
    """Deterministic short hash of a JSON-able configuration dict."""
    payload = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def git_revision(cwd: str | Path | None = None) -> str:
    """Current git commit, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(cwd) if cwd else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


def _package_versions() -> dict:
    versions = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:
                continue
        versions[name] = getattr(module, "__version__", "unknown")
    return versions


def build_manifest(
    seed: int | None = None,
    config: dict | None = None,
    command: str | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the ``kind="manifest"`` record for one run.

    ``seed``/``config`` identify the experiment; the hash covers only
    ``config`` so it is stable across machines and re-runs (timestamps
    and git state live beside it, not inside it).
    """
    config = config or {}
    manifest = {
        "kind": "manifest",
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "seed": seed,
        "command": command,
        "config": config,
        "config_hash": config_hash(config),
        "git_rev": git_revision(Path(__file__).resolve().parents[3]),
        "packages": _package_versions(),
        "created_unix": time.time(),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if extra:
        manifest.update(extra)
    return manifest


def check_schema(manifest: dict, path: str | Path | None = None) -> dict:
    """Assert a loaded manifest matches the current schema version."""
    where = f" in {path}" if path else ""
    version = manifest.get("schema_version")
    if version != TELEMETRY_SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"telemetry schema mismatch{where}: file has"
            f" {version!r}, this build reads"
            f" {TELEMETRY_SCHEMA_VERSION} — regenerate the run or use a"
            " matching repro version"
        )
    return manifest
