"""Process-global telemetry: the object instrumented code talks to.

Hot paths call ``telemetry()`` and bail on ``.active`` — one dict-free
attribute check — so a disabled build stays within the overhead budget.
Enabling wires the tracer and registry together and (optionally)
remembers where the run should be exported.

The global is per-process by design: campaign workers enable their own
telemetry in the pool initializer and ship a snapshot back to the
parent, which merges chunks in deterministic order.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.obs.export import write_run
from repro.obs.manifest import build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["Telemetry", "telemetry", "enable", "disable", "log_line"]


class Telemetry:
    """A tracer + metrics registry with one on/off switch."""

    def __init__(self) -> None:
        self.active = False
        self.tracer = Tracer(enabled=False)
        self.metrics = MetricsRegistry()
        self.marks: dict[str, float] = {}
        """Named ``perf_counter`` timestamps (e.g. ``forward_start``)
        shared between instrumented code and timing hooks."""
        self.extra_records: list[dict] = []
        """Result records (campaign rows, experiment tables) appended
        to the exported run so provenance and results travel together."""
        self.manifest_extra: dict = {}
        """Run-level fields merged into the exported manifest (e.g.
        the campaign pool's ``scaleout`` worker-count/arena-bytes
        block), so ``repro obs report`` shows execution health."""
        self.out_path: Path | None = None

    # -- lifecycle -------------------------------------------------------------

    def enable(self, out_path: str | Path | None = None) -> "Telemetry":
        self.active = True
        self.tracer.enabled = True
        if out_path is not None:
            self.out_path = Path(out_path)
        return self

    def disable(self) -> None:
        self.active = False
        self.tracer.enabled = False

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        self.marks.clear()
        self.extra_records.clear()
        self.manifest_extra.clear()
        self.out_path = None

    def record(self, kind: str, **fields) -> None:
        """Queue a result record for export alongside the telemetry."""
        if self.active:
            self.extra_records.append({"kind": kind, **fields})

    # -- convenience shims used by instrumented code ---------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        self.tracer.event(name, **attrs)

    def log(self, message: str, *, echo: bool = True, **attrs) -> None:
        """Structured log line: an event in the stream + stderr echo."""
        if self.active:
            self.tracer.event("log", message=message, **attrs)
        if echo:
            print(message, file=sys.stderr, flush=True)

    # -- export ----------------------------------------------------------------

    def flush(
        self,
        path: str | Path | None = None,
        seed: int | None = None,
        config: dict | None = None,
        command: str | None = None,
        extra_records: list[dict] = (),
    ) -> Path | None:
        """Write the collected run (manifest + spans + metrics) as JSONL."""
        path = path or self.out_path
        if path is None:
            return None
        manifest = build_manifest(
            seed=seed,
            config=config,
            command=command,
            extra=self.manifest_extra or None,
        )
        return write_run(
            path,
            manifest,
            spans=self.tracer.records,
            metrics=self.metrics,
            extra_records=[*self.extra_records, *extra_records],
        )


_TELEMETRY = Telemetry()


def telemetry() -> Telemetry:
    """The process-wide telemetry instance."""
    return _TELEMETRY


def enable(out_path: str | Path | None = None) -> Telemetry:
    """Switch the global telemetry on (idempotent)."""
    return _TELEMETRY.enable(out_path)


def disable() -> None:
    _TELEMETRY.disable()


def log_line(message: str, *, echo: bool = True, **attrs) -> None:
    """Module-level shortcut for :meth:`Telemetry.log`."""
    _TELEMETRY.log(message, echo=echo, **attrs)
