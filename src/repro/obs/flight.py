"""Per-trial flight recorder: the forensic timeline behind an outcome.

A campaign tells you *that* a trial produced an SDC; the flight
recorder tells you *why*.  When armed it collects, per trial, a
schema-versioned JSON record with the injection event (fault model,
site, bit positions, strike iteration, old/new values), a per-layer
corruption-front sample of the struck forward, any detector/clip
events, the first decode-divergence token against the cached baseline,
and the final outcome — the end-to-end propagation path the paper's
Figures 5/6 describe (injection site → layer front → decode divergence
→ Masked/SDC).

The recorder is a **pure observer** by construction:

* it is off by default and costs exactly one attribute check
  (``flight_recorder().active``) on every instrumented hot path;
* its corruption-front hooks register ``row_scoped=True,
  observer=True`` on the engine's :class:`HookManager`, so the batched
  and speculative decode gates (``decode_batching_safe`` /
  ``decode_speculation_safe``) see the same answers as a recorder-off
  run — arming it must never change which execution strategy runs;
* the fault-free reference for the corruption front comes from a
  *replay* forward executed after the injector has restored the
  weights, never from perturbing the faulty run itself.

The differential suite holds the recorder to that: TrialRecords with
the recorder armed are bit-identical to a recorder-off campaign.

Records travel inside the telemetry run JSONL (``kind="flight"``, one
record per trial) and are rendered by ``python -m repro obs explain``.
Like :mod:`repro.obs.runtime`, the recorder is a per-process global:
campaign pool workers arm their own and ship drained records back in
the result payload; the parent adopts them in trial order.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "flight_recorder",
    "first_divergence",
    "flight_records",
    "explain_trial",
    "explain_run",
]

FLIGHT_SCHEMA_VERSION = 1

_FRONT_RTOL = 1e-4
"""Relative tolerance separating fault corruption from float noise —
the same threshold :mod:`repro.fi.propagation` uses for its
layer-by-layer corruption masks."""

_FRONT_ATOL = 1e-6


def first_divergence(prediction: str, baseline: str) -> dict | None:
    """First whitespace-token position where two outputs disagree.

    Returns ``None`` for identical outputs, else ``{"index", "baseline",
    "faulty"}`` where a missing side (one output being a prefix of the
    other) reads ``None``.
    """
    pred_tokens = prediction.split()
    base_tokens = baseline.split()
    for index, (faulty, base) in enumerate(zip(pred_tokens, base_tokens)):
        if faulty != base:
            return {"index": index, "baseline": base, "faulty": faulty}
    if len(pred_tokens) != len(base_tokens):
        index = min(len(pred_tokens), len(base_tokens))
        return {
            "index": index,
            "baseline": base_tokens[index] if index < len(base_tokens) else None,
            "faulty": pred_tokens[index] if index < len(pred_tokens) else None,
        }
    return None


def _front_entry(name: str, faulty: np.ndarray, reference: np.ndarray) -> dict:
    """Compact corruption summary of one layer's struck-forward output."""
    entry: dict = {"layer": name, "elements": int(faulty.size)}
    if faulty.shape != reference.shape:
        entry["note"] = (
            f"shape mismatch: faulty {faulty.shape}, replay {reference.shape}"
        )
        return entry
    mismatch = ~np.isclose(
        faulty, reference, rtol=_FRONT_RTOL, atol=_FRONT_ATOL, equal_nan=True
    )
    delta = np.abs(faulty - reference)
    finite = np.isfinite(delta)
    entry["corrupted"] = int(mismatch.sum())
    entry["corrupted_frac"] = float(mismatch.mean()) if mismatch.size else 0.0
    entry["max_abs_delta"] = (
        float(delta[finite].max()) if finite.any() else 0.0
    )
    entry["nonfinite"] = int((~np.isfinite(faulty)).sum())
    return entry


class FlightRecorder:
    """Collects one forensic record per campaign trial when armed."""

    def __init__(self) -> None:
        self.active = False
        self.completed: dict[int, dict] = {}
        """Finished flight records keyed by trial index."""
        self._current: dict | None = None
        self._front_faulty: dict[str, np.ndarray] = {}

    # -- lifecycle -------------------------------------------------------------

    def arm(self) -> "FlightRecorder":
        self.active = True
        return self

    def disarm(self) -> None:
        self.active = False

    def reset(self) -> None:
        self.completed.clear()
        self._current = None
        self._front_faulty = {}

    # -- per-trial recording ---------------------------------------------------

    def begin_trial(
        self, trial: int, key: tuple, site: dict, example_index: int
    ) -> None:
        """Open the record for one trial (drops any stale in-flight one)."""
        self._current = {
            "kind": "flight",
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "trial": int(trial),
            "key": list(key),
            "example_index": int(example_index),
            "site": dict(site),
            "events": [],
        }
        self._front_faulty = {}

    def event(self, name: str, **fields) -> None:
        """Append a timeline event to the open trial (no-op outside one)."""
        if self._current is not None:
            self._current["events"].append({"event": name, **fields})

    def attach_front(self, engine, iteration: int):
        """Register corruption-front probes on every faultable layer.

        Each probe copies the layer's output the *first* time that
        layer reaches the strike iteration — the same one-shot latch
        the computational injector uses, so under multi-forward
        evaluation (MC option scoring, where every forward runs at
        iteration 0) the probe samples exactly the forward the fault
        struck.  Probes are registered ``row_scoped=True,
        observer=True``: pure per-row reads that keep the batched and
        speculative decode gates engaged.

        Call *inside* the injection context, after the injector has
        registered its own hook, so the struck layer's probe observes
        the post-injection output.  Returns a detach handle.
        """
        target = int(iteration)
        captured = self._front_faulty

        def front_probe(output, ctx):
            if ctx.iteration == target and ctx.full_name not in captured:
                captured[ctx.full_name] = np.array(
                    output, dtype=np.float64, copy=True
                )
            return None

        handles = [
            engine.hooks.register(
                name, front_probe, row_scoped=True, observer=True
            )
            for name in engine.linear_layer_names()
        ]

        def detach() -> None:
            for handle in handles:
                handle()

        return detach

    @property
    def has_front(self) -> bool:
        """True when the open trial captured at least one layer output."""
        return bool(self._front_faulty)

    def end_trial(
        self,
        *,
        outcome: str,
        prediction: str,
        baseline: str,
        changed: bool,
        fired: bool = True,
        reference: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Finalize the open trial: front summary, divergence, outcome.

        ``reference`` maps layer name → fault-free output of the struck
        forward (from a post-restore replay); when provided, the
        corruption front is summarized layer-by-layer against it.
        """
        record = self._current
        if record is None:
            return
        front = None
        if reference is not None and self._front_faulty:
            front = [
                _front_entry(
                    name,
                    self._front_faulty[name],
                    np.asarray(reference[name], dtype=np.float64),
                )
                for name in reference
                if name in self._front_faulty
            ]
        record["front"] = front
        record["fired"] = bool(fired)
        record["outcome"] = outcome
        record["prediction"] = prediction
        record["baseline"] = baseline
        record["changed"] = bool(changed)
        record["divergence"] = (
            first_divergence(prediction, baseline) if changed else None
        )
        self.completed[record["trial"]] = record
        self._current = None
        self._front_faulty = {}

    def abort_trial(self) -> None:
        """Drop the in-flight record (crashed or quarantined trial)."""
        self._current = None
        self._front_faulty = {}

    # -- cross-process merge / export ------------------------------------------

    def drain(self) -> list[dict]:
        """Remove and return finished records, sorted by trial index."""
        records = [self.completed[t] for t in sorted(self.completed)]
        self.completed.clear()
        return records

    def adopt(self, records: list[dict]) -> None:
        """Merge records drained from a worker process (trial-keyed)."""
        for record in records:
            self.completed[int(record["trial"])] = record


_FLIGHT = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder (off until armed)."""
    return _FLIGHT


# ----------------------------------------------------------------------------
# Reading + rendering: ``python -m repro obs explain``.
# ----------------------------------------------------------------------------


def flight_records(run) -> dict[int, dict]:
    """Flight records of a parsed :class:`~repro.obs.export.RunData`."""
    records = {}
    for record in run.of_kind("flight"):
        version = record.get("schema_version")
        if version != FLIGHT_SCHEMA_VERSION:
            raise ValueError(
                f"flight record schema mismatch: file has {version!r},"
                f" this build reads {FLIGHT_SCHEMA_VERSION}"
            )
        records[int(record["trial"])] = record
    return records


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _site_surface(site: dict) -> str:
    """Corrupted runtime surface implied by a site dict's fault model."""
    model = str(site.get("fault_model", ""))
    if model.endswith("-mem"):
        return "weights"
    if model.endswith("-kv"):
        return "kv-cache"
    if model.endswith("-acc"):
        return "accumulator"
    return "activations"


def _fmt_site(site: dict) -> str:
    model = str(site.get("fault_model", ""))
    parts = [model, f"layer {site.get('layer_name')}"]
    if model.endswith("-kv"):
        parts.append(
            f"plane {site.get('plane', 'k')}"
            f" head {site.get('row')} channel {site.get('col')}"
        )
    else:
        parts.append(f"row {site.get('row')} col {site.get('col')}")
    parts.append(f"bits {list(site.get('bits', []))}")
    if model.endswith("-acc"):
        parts.append(f"split {site.get('acc_frac', 0.0):.2f}")
    if not model.endswith("-mem") or site.get("iteration"):
        parts.append(f"iteration {site.get('iteration')}")
    if site.get("engine_side", "target") != "target":
        parts.append(f"engine {site.get('engine_side')}")
    return " · ".join(parts)


def _render_front(record: dict) -> list[str]:
    front = record.get("front")
    if not front:
        reason = "strike iteration never reached" if not record.get(
            "fired", True
        ) else "no replay reference (beam search or aborted trial)"
        return [f"corruption front   not sampled ({reason})"]
    site_layer = record.get("site", {}).get("layer_name")
    lines = ["corruption front (faulty strike forward vs fault-free replay)"]
    header = f"  {'layer':<34s} {'corrupted':>10s} {'max|delta|':>11s} {'nonfinite':>10s}"
    lines.append(header)
    for entry in front:
        name = entry["layer"]
        mark = " «site»" if name == site_layer else ""
        if "note" in entry:
            lines.append(f"  {name + mark:<34s} {entry['note']}")
            continue
        lines.append(
            f"  {name + mark:<34s} {entry['corrupted_frac']:>9.1%}"
            f" {entry['max_abs_delta']:>11.4g} {entry['nonfinite']:>10d}"
        )
    return lines


def _clip(text: str, limit: int = 160) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def explain_trial(record: dict) -> str:
    """Render one flight record as a human-readable propagation story."""
    site = record.get("site", {})
    lines = [
        f"== trial {record['trial']} · outcome {record.get('outcome')} ==",
        f"fault      {_fmt_site(site)}",
        f"surface    {_site_surface(site)}"
        f" ({site.get('engine_side', 'target')} engine)",
        f"example    {record.get('example_index')}"
        f" (key {':'.join(str(k) for k in record.get('key', []))})",
    ]
    events = record.get("events", [])
    if events:
        lines.append("timeline")
        for event in events:
            fields = " ".join(
                f"{k}={_fmt_value(v)}"
                for k, v in event.items()
                if k != "event"
            )
            lines.append(f"  {event['event']:<18s} {fields}".rstrip())
    lines += _render_front(record)
    divergence = record.get("divergence")
    if divergence is None:
        lines.append(
            "divergence output identical to baseline"
            if not record.get("changed")
            else "divergence output changed (no token-level divergence point)"
        )
    else:
        lines.append(
            f"divergence first divergent token at index {divergence['index']}:"
            f" baseline {divergence['baseline']!r} -> faulty"
            f" {divergence['faulty']!r}"
        )
    lines.append(f"prediction {_clip(record.get('prediction', ''))!r}")
    lines.append(f"baseline   {_clip(record.get('baseline', ''))!r}")
    return "\n".join(lines)


def _render_index(records: dict[int, dict]) -> str:
    lines = [f"{'trial':>5s}  {'outcome':<14s} {'diverges':>8s}  site"]
    for trial in sorted(records):
        record = records[trial]
        divergence = record.get("divergence")
        depth = str(divergence["index"]) if divergence else "-"
        site = record.get("site", {})
        lines.append(
            f"{trial:>5d}  {record.get('outcome', '?'):<14s} {depth:>8s}"
            f"  {site.get('layer_name')}"
        )
    lines.append("")
    lines.append(
        "pick a trial: python -m repro obs explain <run.jsonl> <trial>"
    )
    return "\n".join(lines)


def explain_run(path: str | Path, trial: int | None = None) -> str:
    """Explain one trial of a flight-recorded run (or index all trials)."""
    from repro.obs.export import read_run

    records = flight_records(read_run(path))
    if not records:
        raise ValueError(
            f"{path}: no flight records — re-run the campaign with --flight"
        )
    if trial is None:
        return _render_index(records)
    if trial not in records:
        raise ValueError(
            f"{path}: no flight record for trial {trial}"
            f" (recorded: {sorted(records)})"
        )
    return explain_trial(records[trial])


def main(argv: list[str]) -> int:
    """Entry point for the ``obs explain`` subcommand."""
    import sys

    from repro.obs.manifest import SchemaMismatchError

    if not argv or len(argv) > 2:
        print("usage: python -m repro obs explain <run.jsonl> [TRIAL]")
        return 2
    trial = int(argv[1]) if len(argv) == 2 else None
    try:
        print(explain_run(argv[0], trial))
    except FileNotFoundError:
        print(f"error: no such run file: {argv[0]}", file=sys.stderr)
        return 1
    except (ValueError, SchemaMismatchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0  # output piped to head/less and closed early
    return 0
