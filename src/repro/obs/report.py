"""Summary reporter: ``python -m repro obs report <run.jsonl>``.

Renders a telemetry run as aligned text tables: the manifest header,
a span timing breakdown (grouped by span name), histogram quantiles
(per-layer forward time, trial latency), counters (trials, tokens,
injections, Masked/SDC outcome tallies) and gauges.  Runs that carry
``serve.*`` instruments get a dedicated serving SLO section: TTFT /
TPOT / end-to-end latency quantiles, per-tenant throughput and the
load generator's offered-load sweep rows.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

from repro.obs.export import RunData, read_run

__all__ = ["render_report", "report_path", "main"]


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return lines


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _span_section(run: RunData) -> list[str]:
    if not run.spans:
        return []
    grouped: dict[str, list[float]] = defaultdict(list)
    for span in run.spans:
        grouped[span.name].append(span.duration * 1e3)
    rows = []
    for name in sorted(grouped):
        durations = sorted(grouped[name])
        n = len(durations)
        total = sum(durations)
        rows.append(
            [
                name,
                str(n),
                _fmt(total),
                _fmt(total / n),
                _fmt(durations[n // 2]),
                _fmt(durations[min(n - 1, int(0.95 * (n - 1)))]),
                _fmt(durations[min(n - 1, int(0.99 * (n - 1)))]),
                _fmt(durations[-1]),
            ]
        )
    lines = ["", "== spans (ms) =="]
    lines += _table(
        ["name", "count", "total", "mean", "p50", "p95", "p99", "max"], rows
    )
    return lines


def _histogram_section(run: RunData) -> list[str]:
    if not run.metrics.histograms:
        return []
    rows = []
    for name in sorted(run.metrics.histograms):
        summary = run.metrics.histogram(name).summary()
        if summary["count"] == 0:
            continue
        rows.append(
            [
                name,
                str(summary["count"]),
                _fmt(summary["mean"]),
                _fmt(summary["p50"]),
                _fmt(summary["p95"]),
                _fmt(summary["p99"]),
                _fmt(summary["max"]),
            ]
        )
    lines = ["", "== histograms =="]
    lines += _table(["name", "count", "mean", "p50", "p95", "p99", "max"], rows)
    return lines


def _scalar_section(run: RunData) -> list[str]:
    lines = []
    if run.metrics.counters:
        lines += ["", "== counters =="]
        lines += _table(
            ["name", "value"],
            [
                [name, _fmt(counter.value)]
                for name, counter in sorted(run.metrics.counters.items())
            ],
        )
    if run.metrics.gauges:
        lines += ["", "== gauges =="]
        lines += _table(
            ["name", "value"],
            [
                [name, _fmt(gauge.value)]
                for name, gauge in sorted(run.metrics.gauges.items())
            ],
        )
    return lines


def _derived_section(run: RunData) -> list[str]:
    """Headline rates the raw instruments imply (tokens/sec, SDC rate)."""
    lines = []
    counters = run.metrics.counters
    tokens = counters.get("decode.tokens")
    decode_ms = run.metrics.histograms.get("decode.generate_ms")
    if tokens and decode_ms and decode_ms.total > 0:
        lines.append(
            f"tokens/sec (decode): {tokens.value / (decode_ms.total / 1e3):.1f}"
        )
    outcome_names = [n for n in counters if n.startswith("campaign.outcome.")]
    if outcome_names:
        total = sum(counters[n].value for n in outcome_names)
        masked = counters.get("campaign.outcome.masked")
        if total > 0:
            sdc = total - (masked.value if masked else 0.0)
            lines.append(f"SDC rate: {sdc / total:.3f} over {int(total)} trials")
    if lines:
        lines = ["", "== derived =="] + lines
    return lines


def _flight_section(run: RunData) -> list[str]:
    """Recorder-aware forensics summary: where do SDCs come from?

    Groups flight-recorded trials by injection layer (outcome tallies
    per site) and summarizes how deep into the output the first
    divergent token lands for SDC trials — the aggregate view of the
    per-trial stories ``obs explain`` renders.
    """
    from repro.obs.flight import flight_records

    records = flight_records(run)
    if not records:
        return []
    by_layer: dict[str, dict[str, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for record in records.values():
        layer = record.get("site", {}).get("layer_name", "?")
        by_layer[layer][record.get("outcome", "?")] += 1
    outcomes = sorted({o for tally in by_layer.values() for o in tally})
    rows = [
        [layer, *(str(by_layer[layer][o]) for o in outcomes)]
        for layer in sorted(by_layer)
    ]
    lines = ["", "== flight: outcomes by injection layer =="]
    lines += _table(["layer", *outcomes], rows)
    depths = sorted(
        record["divergence"]["index"]
        for record in records.values()
        if record.get("divergence") is not None
        and record.get("outcome") != "masked"
    )
    if depths:
        n = len(depths)
        lines += [
            "",
            "== flight: SDC divergence depth (first divergent token) ==",
            f"trials {n}  min {depths[0]}  p50 {depths[n // 2]}"
            f"  max {depths[-1]}",
        ]
    return lines


def _serve_section(run: RunData) -> list[str]:
    """Dedicated serving SLO view: TTFT / TPOT / end-to-end latency /
    queue depth / batch occupancy quantiles, per-tenant throughput and
    speculative accept lengths, campaign fallback counters, and any
    ``serve_load_point`` sweep rows the load generator recorded."""
    histograms = run.metrics.histograms
    counters = run.metrics.counters
    slo_names = [
        name
        for name in (
            "serve.ttft_ms",
            "serve.tpot_ms",
            "serve.e2e_ms",
            "serve.queue_depth",
            "serve.batch_occupancy",
        )
        if name in histograms and histograms[name].summary()["count"] > 0
    ]
    tenant_tokens = sorted(
        name
        for name in counters
        if name.startswith("serve.tenant.") and name.endswith(".tokens")
    )
    fallbacks = sorted(
        name
        for name in counters
        if name.startswith("serve.campaign_fallback.")
    )
    load_points = run.of_kind("serve_load_point")
    if not slo_names and not tenant_tokens and not fallbacks \
            and not load_points:
        return []
    lines = ["", "== serving SLOs =="]
    if slo_names:
        rows = []
        for name in slo_names:
            summary = histograms[name].summary()
            rows.append(
                [
                    name,
                    str(summary["count"]),
                    _fmt(summary["mean"]),
                    _fmt(summary["p50"]),
                    _fmt(summary["p95"]),
                    _fmt(summary["p99"]),
                    _fmt(summary["max"]),
                ]
            )
        lines += _table(
            ["instrument", "count", "mean", "p50", "p95", "p99", "max"], rows
        )
    if tenant_tokens:
        # Per-tenant speculative accept lengths (recorded by the
        # server's draft-and-verify rounds) sit next to throughput so
        # accept-rate collapse under mixed traffic is visible per
        # tenant, not just in the global decode histogram.
        any_accept = any(
            f"serve.tenant.{n[len('serve.tenant.'):-len('.tokens')]}"
            f".spec_accept_len" in histograms
            for n in tenant_tokens
        )
        rows = []
        for name in tenant_tokens:
            tenant = name[len("serve.tenant.") : -len(".tokens")]
            requests = counters.get(f"serve.tenant.{tenant}.requests")
            row = [
                tenant,
                _fmt(requests.value) if requests else "-",
                _fmt(counters[name].value),
            ]
            if any_accept:
                accept = histograms.get(
                    f"serve.tenant.{tenant}.spec_accept_len"
                )
                if accept is not None and accept.summary()["count"] > 0:
                    summary = accept.summary()
                    row += [
                        _fmt(summary["mean"]),
                        _fmt(summary["p50"]),
                        str(summary["count"]),
                    ]
                else:
                    row += ["-", "-", "-"]
            rows.append(row)
        header = ["tenant", "requests", "tokens"]
        if any_accept:
            header += ["accept mean", "accept p50", "rounds"]
        lines += ["", "== serving tenants =="]
        lines += _table(header, rows)
    if fallbacks:
        rows = [
            [
                name[len("serve.campaign_fallback."):],
                _fmt(counters[name].value),
            ]
            for name in fallbacks
        ]
        lines += ["", "== serving campaign fallbacks (served -> local) =="]
        lines += _table(["reason", "count"], rows)
    if load_points:
        rows = [
            [
                _fmt(point.get("offered_rps", float("nan"))),
                str(point.get("completed", "-")),
                str(point.get("rejected", "-")),
                _fmt(point.get("throughput_tps", float("nan"))),
                _fmt(point.get("ttft_ms", {}).get("p50", float("nan"))),
                _fmt(point.get("ttft_ms", {}).get("p99", float("nan"))),
                _fmt(point.get("latency_ms", {}).get("p50", float("nan"))),
                _fmt(point.get("latency_ms", {}).get("p99", float("nan"))),
            ]
            for point in load_points
        ]
        lines += ["", "== serving load sweep =="]
        lines += _table(
            [
                "offered rps",
                "done",
                "shed",
                "tok/s",
                "ttft p50",
                "ttft p99",
                "e2e p50",
                "e2e p99",
            ],
            rows,
        )
    return lines


def render_report(run: RunData) -> str:
    manifest = run.manifest
    lines = [
        "== run manifest ==",
        f"command        {manifest.get('command')}",
        f"seed           {manifest.get('seed')}",
        f"config hash    {manifest.get('config_hash')}",
        f"schema         v{manifest.get('schema_version')}",
        f"git rev        {manifest.get('git_rev')}",
        f"created        {manifest.get('created_iso')}",
        "packages       "
        + ", ".join(
            f"{k}={v}" for k, v in sorted(manifest.get("packages", {}).items())
        ),
    ]
    scaleout = manifest.get("scaleout")
    if scaleout:
        lines.append(
            f"scale-out      {scaleout.get('workers')} workers,"
            f" shared arena {scaleout.get('arena_bytes', 0) / 1e6:.1f} MB"
        )
    lines += _span_section(run)
    lines += _histogram_section(run)
    lines += _scalar_section(run)
    lines += _serve_section(run)
    lines += _flight_section(run)
    lines += _derived_section(run)
    return "\n".join(lines)


def render_comparison(runs: list[tuple[str, RunData]]) -> str:
    """Side-by-side counter/histogram diff across several runs.

    One column per run; with exactly two runs a delta column is added
    (second minus first) — the view used to quantify e.g. the flight
    recorder's overhead against a recorder-off run of the same
    campaign.
    """
    labels = [label for label, _ in runs]
    lines = ["== run comparison ==", "runs: " + ", ".join(labels)]
    counter_names = sorted(
        {name for _, run in runs for name in run.metrics.counters}
    )
    if counter_names:
        rows = []
        for name in counter_names:
            values = [
                run.metrics.counters.get(name) for _, run in runs
            ]
            row = [name] + [
                _fmt(v.value) if v is not None else "-" for v in values
            ]
            if len(runs) == 2 and None not in values:
                row.append(_fmt(values[1].value - values[0].value))
            elif len(runs) == 2:
                row.append("-")
            rows.append(row)
        headers = ["counter", *labels] + (["delta"] if len(runs) == 2 else [])
        lines += ["", "== counters =="]
        lines += _table(headers, rows)
    histogram_names = sorted(
        {name for _, run in runs for name in run.metrics.histograms}
    )
    if histogram_names:
        rows = []
        for name in histogram_names:
            for stat in ("count", "mean", "p95"):
                row = [name if stat == "count" else "", stat]
                cells = []
                for _, run in runs:
                    histogram = run.metrics.histograms.get(name)
                    summary = (
                        histogram.summary() if histogram is not None else None
                    )
                    cells.append(
                        _fmt(summary[stat])
                        if summary and summary["count"]
                        else "-"
                    )
                rows.append(row + cells)
        lines += ["", "== histograms =="]
        lines += _table(["name", "stat", *labels], rows)
    return "\n".join(lines)


def _comparison_labels(paths: list[str]) -> list[str]:
    """Shortest distinct labels for the compared runs (basenames, or
    full paths when basenames collide)."""
    names = [Path(p).name for p in paths]
    return names if len(set(names)) == len(names) else [str(p) for p in paths]


def report_path(path: str | Path) -> str:
    """Load a run file and render its report."""
    return render_report(read_run(path))


def main(argv: list[str]) -> int:
    """Entry point for the ``obs report`` subcommand."""
    import sys

    from repro.obs.manifest import SchemaMismatchError

    if not argv:
        print("usage: python -m repro obs report <run.jsonl> [more.jsonl ...]")
        return 2
    status = 0
    loaded: list[tuple[str, RunData]] = []
    for path, label in zip(argv, _comparison_labels(argv)):
        try:
            run = read_run(path)
        except FileNotFoundError:
            print(f"error: no such run file: {path}", file=sys.stderr)
            status = 1
            continue
        except (ValueError, SchemaMismatchError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        loaded.append((label, run))
        print(render_report(run))
    if len(loaded) > 1:
        print()
        print(render_comparison(loaded))
    return status
