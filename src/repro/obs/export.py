"""JSONL export/import for telemetry runs.

A run file is newline-delimited JSON whose first record is the run
manifest (``kind="manifest"``), followed by ``kind="span"``,
``kind="metrics"`` (one registry snapshot), ``kind="log"`` and
arbitrary result records.  Everything round-trips through
:func:`write_run` / :func:`read_run`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.manifest import check_schema
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord

__all__ = ["JsonlWriter", "write_run", "read_jsonl", "read_run", "RunData"]


class JsonlWriter:
    """Append-per-record JSONL writer (one flush per record).

    ``append=True`` opens an existing file for appending instead of
    truncating — the mode durable journals (campaign checkpoints)
    reopen their files with across restarts.
    """

    def __init__(self, path: str | Path, append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a" if append else "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_run(
    path: str | Path,
    manifest: dict,
    spans: list[SpanRecord] = (),
    metrics: MetricsRegistry | None = None,
    extra_records: list[dict] = (),
) -> Path:
    """Serialize one run: manifest first, then spans/metrics/extras."""
    path = Path(path)
    with JsonlWriter(path) as writer:
        writer.write(manifest)
        for span in spans:
            writer.write(span.to_dict())
        if metrics is not None and len(metrics):
            writer.write({"kind": "metrics", **metrics.snapshot()})
        for record in extra_records:
            writer.write(record)
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse every non-empty line of a JSONL file.

    A torn *final* line — the record in flight when the writing
    process died — is tolerated and dropped, matching the campaign
    checkpoint reader's crash semantics; corruption anywhere earlier
    raises ``ValueError`` with the offending line number.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    records = []
    for lineno, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines) - 1:
                break  # torn final record: mid-write at the kill
            raise ValueError(
                f"{path}: corrupt JSONL record at line {lineno + 1}"
            ) from exc
    return records


class RunData:
    """A parsed run: manifest + spans + merged metrics + other records."""

    def __init__(self, manifest: dict, records: list[dict]) -> None:
        self.manifest = manifest
        self.records = records
        self.spans = [
            SpanRecord.from_dict(r) for r in records if r.get("kind") == "span"
        ]
        self.metrics = MetricsRegistry()
        for record in records:
            if record.get("kind") == "metrics":
                self.metrics.merge(record)

    def of_kind(self, kind: str) -> list[dict]:
        return [r for r in self.records if r.get("kind") == kind]


def read_run(path: str | Path) -> RunData:
    """Load + schema-check a run file written by :func:`write_run`."""
    records = read_jsonl(path)
    if not records or records[0].get("kind") != "manifest":
        raise ValueError(
            f"{path}: not a telemetry run (first record must be a manifest)"
        )
    manifest = check_schema(records[0], path)
    return RunData(manifest, records[1:])
