"""Chrome trace-event export: one stitched timeline per campaign run.

``python -m repro obs export-trace run.jsonl -o trace.json`` converts a
telemetry run's spans into the Chrome/Perfetto trace-event JSON format
(``chrome://tracing`` / https://ui.perfetto.dev), so a campaign's
execution — baseline sweep, checkpointing, every trial, worker
activity — is inspectable on a zoomable timeline.

Worker spans arrive already stitched: the campaign merge adopts them
in trial order with ``(campaign_hash, trial, worker_pid)`` attribution
and rebases their ``perf_counter`` starts into the parent's clock (see
``FICampaign._run_supervised_pool``), so here each span only needs
mapping onto a (pid, tid) lane — the campaign is the process, the
parent and each worker get one thread lane each.

Output is strict JSON (``allow_nan=False``); timestamps are
microseconds relative to the earliest span.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.export import RunData, read_run

__all__ = ["chrome_trace", "export_trace", "main"]

_PID = 1
"""Single logical process: the stitched campaign timeline."""

_MAIN_TID = 0
"""Thread lane for spans recorded by the parent process."""


def _json_safe(value):
    """Trace args must survive strict JSON (no NaN/Inf, no objects)."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace(run: RunData) -> dict:
    """Build a Chrome trace-event document from a parsed run."""
    spans = sorted(run.spans, key=lambda s: (s.start, s.span_id))
    t0 = spans[0].start if spans else 0.0
    tids: dict[int, str] = {_MAIN_TID: "main"}
    events: list[dict] = []
    for span in spans:
        worker_pid = span.attrs.get("worker_pid")
        if worker_pid is None:
            tid = _MAIN_TID
        else:
            tid = int(worker_pid)
            tids.setdefault(tid, f"worker pid {tid}")
        args = {k: _json_safe(v) for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((span.start - t0) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": _PID,
                "tid": tid,
                "args": args,
            }
        )
    manifest = run.manifest
    process_name = manifest.get("command") or "repro"
    campaign_hashes = sorted(
        {
            str(s.attrs["campaign_hash"])
            for s in spans
            if s.attrs.get("campaign_hash") is not None
        }
    )
    if campaign_hashes:
        process_name = f"{process_name} [{', '.join(campaign_hashes)}]"
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_TID,
            "args": {"name": process_name},
        }
    ]
    metadata += [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in sorted(tids.items())
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "command": _json_safe(manifest.get("command")),
            "config_hash": _json_safe(manifest.get("config_hash")),
            "git_rev": _json_safe(manifest.get("git_rev")),
            "created_iso": _json_safe(manifest.get("created_iso")),
        },
    }


def export_trace(run_path: str | Path, out_path: str | Path) -> Path:
    """Read a run file and write its Chrome trace-event JSON."""
    document = chrome_trace(read_run(run_path))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with out_path.open("w", encoding="utf-8") as fh:
        json.dump(document, fh, allow_nan=False, sort_keys=True)
        fh.write("\n")
    return out_path


def main(run: str, out: str | None) -> int:
    """Entry point for the ``obs export-trace`` subcommand."""
    import sys

    from repro.obs.manifest import SchemaMismatchError

    out = out or str(Path(run).with_suffix(".trace.json"))
    try:
        path = export_trace(run, out)
    except FileNotFoundError:
        print(f"error: no such run file: {run}", file=sys.stderr)
        return 1
    except (ValueError, SchemaMismatchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"trace: {path} (open in chrome://tracing or ui.perfetto.dev)")
    return 0
