"""Zero-dependency tracing: nestable spans with a no-op fast path.

A :class:`Tracer` records :class:`SpanRecord` entries — wall time via
``time.perf_counter`` (monotonic), arbitrary attributes, and parent
links so nested spans reconstruct the call tree of a campaign run.
When disabled (the default) ``span()`` returns a shared null context
manager and the hot paths pay a single attribute check, keeping
instrumented code within the <5% overhead budget.

Spans are recorded *at exit* in completion order; ``span_id`` values
are assigned at entry in strictly increasing order, so both orderings
(start order and finish order) are recoverable from the record list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Span", "Tracer", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """One finished span: where time went and under which parent."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    """Seconds on the tracer's monotonic clock (``perf_counter``)."""
    duration: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SpanRecord":
        return cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record["parent_id"],
            start=record["start"],
            duration=record["duration"],
            attrs=dict(record.get("attrs", {})),
        )


class _NullSpan:
    """Context manager that does nothing (disabled-tracer fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        """Discard attributes (mirror of :meth:`Span.set`)."""


NULL_SPAN = _NullSpan()


class Span:
    """A live span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. the outcome)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self._t0
        tracer = self.tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        tracer.records.append(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self._t0,
                duration=duration,
                attrs=self.attrs,
            )
        )


class Tracer:
    """Span recorder; cheap to call when disabled."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs) -> "Span | _NullSpan":
        """Open a nested span: ``with tracer.span("campaign.trial"):``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous (zero-duration) span."""
        if not self.enabled:
            return
        self.records.append(
            SpanRecord(
                name=name,
                span_id=self._alloc_id(),
                parent_id=self._stack[-1] if self._stack else None,
                start=time.perf_counter(),
                duration=0.0,
                attrs=attrs,
            )
        )

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def adopt(
        self, records: list[SpanRecord], extra_attrs: dict | None = None
    ) -> None:
        """Merge foreign spans (e.g. from a worker process), re-keyed.

        Span ids are reassigned from this tracer's counter while
        preserving the foreign parent/child topology; root spans of the
        adopted batch are parented under the currently open span (if
        any) so worker trees hang off the campaign span that spawned
        them.  Adoption order is the caller's responsibility — adopting
        worker batches in chunk order keeps merged output deterministic
        with respect to worker scheduling.

        ``extra_attrs`` are stamped onto every adopted span — the
        campaign merge uses this to attribute worker spans with
        ``(campaign_hash, trial, worker_pid)`` so a stitched trace can
        group and lane them (see :mod:`repro.obs.traceview`).
        """
        remap: dict[int, int] = {}
        anchor = self._stack[-1] if self._stack else None
        for record in records:
            remap[record.span_id] = self._alloc_id()
        for record in records:
            parent = record.parent_id
            attrs = dict(record.attrs)
            if extra_attrs:
                attrs.update(extra_attrs)
            self.records.append(
                SpanRecord(
                    name=record.name,
                    span_id=remap[record.span_id],
                    parent_id=remap.get(parent, anchor) if parent else anchor,
                    start=record.start,
                    duration=record.duration,
                    attrs=attrs,
                )
            )

    def reset(self) -> None:
        self.records.clear()
        self._stack.clear()
        self._next_id = 1
