"""Live campaign watch: tail a checkpoint journal, render progress.

``python -m repro obs watch checkpoint.jsonl`` observes a running (or
finished) campaign purely through its fsynced trial journal (see
:mod:`repro.fi.checkpoint`) — trials/sec, outcome mix, retry and
quarantine counts, and an ETA — without touching the campaign process.

The reader is incremental and torn-line tolerant by construction: each
poll reads only the bytes appended since the last one and buffers any
partial trailing line until the writer finishes it, so watching a
journal mid-``write()`` never misparses.  Unknown record kinds are
skipped, which keeps the watcher forward-compatible with journal
extensions.
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from pathlib import Path

__all__ = ["WatchState", "watch", "main"]

_RATE_WINDOW = 120
"""Progress samples kept for the sliding trials/sec estimate."""


class WatchState:
    """Incremental view over a campaign checkpoint journal."""

    def __init__(self, total: int | None = None) -> None:
        self.header: dict | None = None
        self.outcomes: dict[int, str] = {}
        self.attempts: dict[int, int] = {}
        self.errors: dict[int, str] = {}
        self.last: dict | None = None
        self.total = total
        self._buffer = ""
        self._samples: list[tuple[float, int]] = []

    # -- ingestion -------------------------------------------------------------

    def feed(self, chunk: str) -> None:
        """Consume appended journal text (possibly ending mid-record)."""
        self._buffer += chunk
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            self._observe_line(line)

    def _observe_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return  # best-effort observer: skip anything unparseable
        kind = record.get("kind")
        if kind == "campaign-checkpoint":
            self.header = record
            if self.total is None and record.get("n_trials") is not None:
                self.total = int(record["n_trials"])
        elif kind == "trial":
            trial = int(record["trial"])
            payload = record.get("record", {})
            self.outcomes[trial] = str(payload.get("outcome", "?"))
            self.attempts[trial] = int(record.get("attempts", 1))
            error = payload.get("error")
            if error:
                self.errors[trial] = str(error)
            self.last = record

    def sample(self, now: float) -> None:
        """Record a (time, trials done) progress point for rate/ETA."""
        self._samples.append((now, self.done))
        del self._samples[:-_RATE_WINDOW]

    # -- derived ---------------------------------------------------------------

    @property
    def done(self) -> int:
        return len(self.outcomes)

    @property
    def retries(self) -> int:
        return sum(max(0, n - 1) for n in self.attempts.values())

    @property
    def quarantined(self) -> int:
        return sum(1 for o in self.outcomes.values() if o == "failed")

    def outcome_mix(self) -> Counter:
        return Counter(self.outcomes.values())

    def rate(self) -> float | None:
        """Trials/sec over the sampled window (None until measurable)."""
        samples = self._samples
        if len(samples) < 2:
            return None
        (t0, d0), (t1, d1) = samples[0], samples[-1]
        if t1 <= t0 or d1 <= d0:
            return None
        return (d1 - d0) / (t1 - t0)

    def eta(self) -> float | None:
        """Seconds until the campaign finishes, when estimable."""
        rate = self.rate()
        if rate is None or self.total is None:
            return None
        remaining = max(0, self.total - self.done)
        return remaining / rate

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        lines = []
        if self.header is not None:
            fingerprint = self.header.get("campaign", {})
            lines.append(
                f"campaign {self.header.get('campaign_hash', '?')}"
                f" · task {fingerprint.get('task', '?')}"
                f" · fault {fingerprint.get('fault_model', '?')}"
            )
        else:
            lines.append("campaign (waiting for journal header)")
        progress = f"trials   {self.done}"
        if self.total:
            progress += f"/{self.total} ({100.0 * self.done / self.total:.0f}%)"
        rate = self.rate()
        if rate is not None:
            progress += f" · {rate:.2f} trials/s"
        eta = self.eta()
        if eta is not None:
            progress += f" · eta {eta:.0f}s"
        lines.append(progress)
        mix = self.outcome_mix()
        if mix:
            lines.append(
                "outcomes "
                + " · ".join(f"{name} {mix[name]}" for name in sorted(mix))
            )
        lines.append(
            f"retries  {self.retries} · quarantined {self.quarantined}"
        )
        if self.last is not None:
            payload = self.last.get("record", {})
            site = payload.get("site", {})
            lines.append(
                f"last     trial {self.last.get('trial')}"
                f" outcome {payload.get('outcome')}"
                f" site {site.get('layer_name')}"
            )
        return "\n".join(lines)


def watch(
    path: str | Path,
    *,
    interval: float = 1.0,
    total: int | None = None,
    once: bool = False,
    clear: bool | None = None,
    stream=None,
) -> int:
    """Tail ``path`` and render campaign progress until it completes.

    ``once`` renders a single snapshot and returns (tests/CI).  With a
    known ``total`` (flag or journal header) the watch exits when every
    trial is journalled; otherwise it runs until interrupted.
    """
    path = Path(path)
    stream = stream or sys.stdout
    if clear is None:
        clear = stream.isatty()
    state = WatchState(total=total)
    offset = 0
    try:
        while True:
            if path.exists():
                with path.open("rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
                offset += len(chunk)
                state.feed(chunk.decode("utf-8", errors="replace"))
            state.sample(time.monotonic())
            text = state.render()
            if clear:
                stream.write("\x1b[2J\x1b[H" + text + "\n")
            else:
                stream.write(text + "\n")
            stream.flush()
            if once:
                return 0
            if state.total is not None and state.done >= state.total:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def main(
    journal: str,
    *,
    interval: float = 1.0,
    total: int | None = None,
    once: bool = False,
    no_clear: bool = False,
) -> int:
    """Entry point for the ``obs watch`` subcommand."""
    return watch(
        journal,
        interval=interval,
        total=total,
        once=once,
        clear=False if no_clear else None,
    )
