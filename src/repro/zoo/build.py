"""Build-and-cache pipeline for zoo models.

``load_model(name)`` returns a trained :class:`ParamStore`, building it
(pretraining from scratch or fine-tuning from its base) on first use
and caching the weights as an ``.npz`` under the artifacts directory,
keyed by a hash of everything that determines the result — so a cache
hit is bit-identical to a rebuild.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.model.params import ParamStore, arena_valid
from repro.model.transformer import TransformerLM
from repro.obs.runtime import telemetry as _telemetry
from repro.tasks import World, all_tasks
from repro.text.tokenizer import Tokenizer
from repro.training.data import (
    build_mixed_corpus,
    build_tokenizer,
    corpus_to_stream,
)
from repro.training.trainer import train_lm
from repro.zoo.registry import ZooSpec, get_spec

__all__ = [
    "WORLD_SEED",
    "artifacts_dir",
    "default_world",
    "default_tokenizer",
    "load_model",
    "build_model",
    "cache_path",
    "sidecar_path",
]

WORLD_SEED = 2025
_CORPUS_SEED = 31337
CORPUS_VERSION = 2
"""Bump when task generators change: the cache key must capture corpus
*content*, which is code-derived and invisible to the spec hash."""


def artifacts_dir() -> Path:
    """Weight-cache directory (override with ``REPRO_ARTIFACTS``)."""
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "artifacts"


def default_world() -> World:
    return World(seed=WORLD_SEED)


def default_tokenizer(world: World | None = None) -> Tokenizer:
    return build_tokenizer(world or default_world())


def _spec_hash(spec: ZooSpec, vocab_size: int) -> str:
    spec_payload = asdict(spec)
    # Pairing metadata cannot change trained weights, so it must not
    # change the cache key (adding a draft_of pairing would otherwise
    # invalidate every cached build of that model).
    spec_payload.pop("draft_of", None)
    payload = json.dumps(
        {
            "spec": spec_payload,
            "vocab": vocab_size,
            "world": WORLD_SEED,
            "corpus": CORPUS_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def cache_path(name: str, directory: Path | None = None) -> Path:
    world = default_world()
    tokenizer = default_tokenizer(world)
    spec = get_spec(name)
    directory = directory or artifacts_dir()
    return directory / f"{name}-{_spec_hash(spec, len(tokenizer))}.npz"


def sidecar_path(name: str, directory: Path | None = None) -> Path:
    """The model's mmap-arena sidecar directory, next to its ``.npz``.

    Same stem as :func:`cache_path` (the spec hash keys both), so the
    cache naming scheme is unchanged — the sidecar is an *additional*
    representation of the same bytes, preferred on load because
    attaching a memory map skips ``.npz`` decompression entirely and
    lets concurrent campaigns share one physical copy of the weights.
    """
    return cache_path(name, directory).with_suffix(".arena")


def _build_stream(
    spec: ZooSpec, world: World, tokenizer: Tokenizer
) -> np.ndarray:
    tasks = all_tasks(world)
    rng = np.random.default_rng([_CORPUS_SEED, spec.init_seed])
    if spec.corpus == "mixed":
        docs = build_mixed_corpus(tasks, rng, spec.corpus_docs)
    else:
        matching = [t for t in tasks if t.name == spec.corpus]
        if not matching:
            raise KeyError(f"no task named {spec.corpus!r} for {spec.name}")
        docs = matching[0].training_texts(rng, spec.corpus_docs)
    return corpus_to_stream(docs, tokenizer)


def build_model(
    name: str,
    directory: Path | None = None,
    verbose: bool = True,
) -> ParamStore:
    """Train the named model (recursively building its base first)."""
    spec = get_spec(name)
    world = default_world()
    tokenizer = default_tokenizer(world)
    if spec.base is not None:
        base_store = load_model(spec.base, directory=directory, verbose=verbose)
        model = TransformerLM.from_store(base_store)
    else:
        config = spec.model_config(len(tokenizer))
        model = TransformerLM(config, seed=spec.init_seed)
    stream = _build_stream(spec, world, tokenizer)
    tel = _telemetry()
    # perf_counter, not time.time: durations must come from the
    # monotonic clock (wall clock jumps under NTP corrections).
    t0 = time.perf_counter()

    def log(step: int, loss: float) -> None:
        tel.log(
            f"[zoo:{name}] step {step:5d} loss {loss:6.3f}"
            f" ({time.perf_counter() - t0:6.1f}s)",
            echo=verbose,
            model=name,
            step=step,
            loss=loss,
        )

    with tel.span("zoo.build", model=name):
        result = train_lm(model, stream, spec.train_config(), on_step=log)
    elapsed = time.perf_counter() - t0
    if tel.active:
        tel.metrics.histogram("zoo.build_s").observe(elapsed)
        tel.metrics.gauge(f"zoo.final_loss.{name}").set(result.smoothed_final())
    tel.log(
        f"[zoo:{name}] done: final loss"
        f" {result.smoothed_final():.3f} in {elapsed:.1f}s",
        echo=verbose,
        model=name,
        final_loss=result.smoothed_final(),
        elapsed_s=elapsed,
    )
    return model.to_store()


def load_model(
    name: str,
    directory: Path | None = None,
    verbose: bool = True,
    rebuild: bool = False,
    prefer_shared: bool = True,
) -> ParamStore:
    """Load the named model from cache, building (and caching) on miss.

    Warm loads prefer the mmap arena sidecar (zero-copy attach, no
    decompression); a cache written before the sidecar existed — or
    with a torn sidecar from an interrupted write — regenerates it
    from the ``.npz`` once and notes the repair.  ``prefer_shared=False``
    forces the legacy decompressed load (private writable arrays).
    """
    path = cache_path(name, directory)
    sidecar = path.with_suffix(".arena")
    if path.exists() and not rebuild:
        if not prefer_shared:
            return ParamStore.load(path)
        if arena_valid(sidecar):
            return ParamStore.open_shared(sidecar)
        store = ParamStore.load(path).to_shared(sidecar)
        _telemetry().log(
            f"[zoo:{name}] regenerated mmap sidecar {sidecar.name}"
            " (cache predates the shared-arena fast path)",
            echo=verbose,
            model=name,
            sidecar=str(sidecar),
        )
        return store
    store = build_model(name, directory=directory, verbose=verbose)
    store.save(path)
    if prefer_shared:
        return store.to_shared(sidecar)
    return store
