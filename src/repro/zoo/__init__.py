"""Model zoo: named, cached, deterministic model builds."""

from repro.zoo.build import (
    WORLD_SEED,
    artifacts_dir,
    build_model,
    cache_path,
    default_tokenizer,
    default_world,
    load_model,
    sidecar_path,
)
from repro.zoo.registry import ZOO, ZooSpec, draft_for, get_spec, zoo_names

__all__ = [
    "WORLD_SEED",
    "ZOO",
    "ZooSpec",
    "artifacts_dir",
    "build_model",
    "cache_path",
    "default_tokenizer",
    "default_world",
    "draft_for",
    "get_spec",
    "load_model",
    "sidecar_path",
    "zoo_names",
]
