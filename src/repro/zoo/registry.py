"""Model zoo registry: the study's model roster (paper §3.3.1).

Paper model -> zoo analogue (all trained from scratch on the synthetic
world; names keep the paper's families recognizable):

========================  ==========================================
Paper                     Zoo name
==========================  ==========================================
Qwen2.5-7B-Instruct       ``qwenlike-base``
Llama3.1-8B-Instruct      ``llamalike-base``
Falcon3-7B-Instruct       ``falconlike-base``
Qwen2.5 1.5B/3B/14B/32B   ``qwenlike-{tiny,small,large,xl}`` (scale sweep)
ALMA-7B (translation FT)  ``alma-base``   (fine-tuned from llamalike)
Llama3.1-Summarizer       ``summarizer-base`` (fine-tuned from llamalike)
Llama-3.2-8X3B MoE        ``moelike-base`` (8 experts, top-2)
Llama-3.2-3B dense        ``denselike-base`` (the MoE's dense twin)
==========================  ==========================================

The three general-purpose families share the architecture but differ in
initialization gain, weight decay and seed, producing the distinct
weight/activation distributions the paper observes (Fig. 13):
``falconlike`` has the widest distribution (and in the paper the
highest stability), ``llamalike`` the narrowest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.training.trainer import TrainConfig

__all__ = ["ZooSpec", "ZOO", "zoo_names", "get_spec", "draft_for"]


@dataclass(frozen=True)
class ZooSpec:
    """Everything needed to build one zoo model deterministically."""

    name: str
    d_model: int
    n_heads: int
    n_blocks: int
    d_ff: int
    init_gain: float = 1.0
    init_seed: int = 0
    n_experts: int = 0
    top_k: int = 2
    family: str = "generic"
    steps: int = 1800
    lr: float = 3e-3
    weight_decay: float = 0.01
    batch_size: int = 16
    seq_len: int = 64
    corpus: str = "mixed"
    """``"mixed"`` for general-purpose pretraining or a task name for
    single-task fine-tuning."""
    base: str | None = None
    """Zoo name of the model this one is fine-tuned from."""
    corpus_docs: int = 9000
    draft_of: str | None = None
    """Zoo name of the larger model this one drafts for in speculative
    decoding (same tokenizer/family, fraction of the parameters).
    Pairing metadata only — it does not affect how the model is built,
    and is excluded from the weight-cache hash for that reason."""

    def model_config(self, vocab_size: int, max_seq: int = 160) -> ModelConfig:
        return ModelConfig(
            vocab_size=vocab_size,
            d_model=self.d_model,
            n_heads=self.n_heads,
            n_blocks=self.n_blocks,
            d_ff=self.d_ff,
            max_seq=max_seq,
            n_experts=self.n_experts,
            top_k=self.top_k,
            init_gain=self.init_gain,
            family=self.family,
        )

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            steps=self.steps,
            batch_size=self.batch_size,
            seq_len=self.seq_len,
            lr=self.lr,
            weight_decay=self.weight_decay,
            warmup_steps=max(20, self.steps // 20),
            seed=self.init_seed + 7,
        )


_SPECS = [
    # General-purpose families (Fig. 3 / Fig. 13).
    ZooSpec(
        name="qwenlike-base", family="qwenlike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=128,
        init_gain=1.0, init_seed=11, steps=2200,
    ),
    ZooSpec(
        name="llamalike-base", family="llamalike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=128,
        init_gain=0.7, init_seed=22, steps=2200, weight_decay=0.02,
    ),
    ZooSpec(
        name="falconlike-base", family="falconlike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=128,
        init_gain=1.6, init_seed=33, steps=2200, weight_decay=0.0,
    ),
    # Scale sweep (Fig. 16) - one family, five sizes.
    ZooSpec(
        name="qwenlike-tiny", family="qwenlike",
        d_model=32, n_heads=4, n_blocks=3, d_ff=64,
        init_seed=11, steps=1400, draft_of="qwenlike-base",
    ),
    ZooSpec(
        name="qwenlike-small", family="qwenlike",
        d_model=48, n_heads=4, n_blocks=3, d_ff=96,
        init_seed=11, steps=1400,
    ),
    ZooSpec(
        name="qwenlike-large", family="qwenlike",
        d_model=80, n_heads=4, n_blocks=5, d_ff=160,
        init_seed=11, steps=1300,
    ),
    ZooSpec(
        name="qwenlike-xl", family="qwenlike",
        d_model=96, n_heads=6, n_blocks=6, d_ff=192,
        init_seed=11, steps=1000,
    ),
    # MoE vs dense twin (Figs 14/15).
    ZooSpec(
        name="moelike-base", family="moelike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=64,
        n_experts=8, top_k=2, init_seed=44, steps=1400,
    ),
    ZooSpec(
        name="denselike-base", family="denselike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=64,
        init_seed=44, steps=2000,
    ),
    # Fine-tuned task models (Fig. 3d / Fig. 18).
    ZooSpec(
        name="alma-base", family="llamalike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=128,
        init_gain=0.7, init_seed=22,
        base="llamalike-base", corpus="wmt16",
        steps=700, lr=1e-3, corpus_docs=4000,
    ),
    ZooSpec(
        name="summarizer-base", family="llamalike",
        d_model=64, n_heads=4, n_blocks=4, d_ff=128,
        init_gain=0.7, init_seed=22,
        base="llamalike-base", corpus="xlsum",
        steps=700, lr=1e-3, corpus_docs=4000,
    ),
]

ZOO: dict[str, ZooSpec] = {spec.name: spec for spec in _SPECS}


def zoo_names() -> list[str]:
    return list(ZOO)


def get_spec(name: str) -> ZooSpec:
    try:
        return ZOO[name]
    except KeyError as exc:
        raise KeyError(f"unknown zoo model {name!r}; known: {zoo_names()}") from exc


def draft_for(name: str) -> ZooSpec | None:
    """The registered draft model for ``name``, if any.

    Resolves the ``draft_of`` pairing in reverse: given a target zoo
    model, return the spec of the (unique) small model registered to
    draft for it, or ``None`` when no pairing exists.
    """
    get_spec(name)  # validate the target exists
    for spec in ZOO.values():
        if spec.draft_of == name:
            return spec
    return None
