"""WMT16-style machine translation between constructed languages.

The source language is derived from English by a deterministic lexicon
(:func:`repro.tasks.world.pseudoword`) plus an adjective-after-noun
word-order rule, so translating requires both token mapping and local
reordering.  Output quality is scored with BLEU and chrF++, the paper's
translation metrics.
"""

from __future__ import annotations

import numpy as np

from repro.tasks.base import GenExample, TaskKind
from repro.tasks.world import (
    TRANSLATABLE_ADJECTIVES,
    TRANSLATABLE_NOUNS,
    TRANSLATABLE_VERBS,
    World,
)

__all__ = ["TranslationTask"]


class TranslationTask:
    """Translate constructed-source sentences back to English."""

    name = "wmt16"
    kind = TaskKind.GENERATIVE
    metrics = ("bleu", "chrf")
    max_new_tokens = 16

    def __init__(self, world: World) -> None:
        self.world = world

    def _sentence(self, rng: np.random.Generator) -> list[str]:
        """An English sentence: det (adj) noun verb det (adj) noun."""

        def np_phrase() -> list[str]:
            det = "the" if rng.integers(0, 2) == 0 else "a"
            phrase = [det]
            if rng.integers(0, 2) == 0:
                phrase.append(
                    TRANSLATABLE_ADJECTIVES[
                        int(rng.integers(0, len(TRANSLATABLE_ADJECTIVES)))
                    ]
                )
            phrase.append(
                TRANSLATABLE_NOUNS[int(rng.integers(0, len(TRANSLATABLE_NOUNS)))]
            )
            return phrase

        verb = TRANSLATABLE_VERBS[int(rng.integers(0, len(TRANSLATABLE_VERBS)))]
        return [*np_phrase(), verb, *np_phrase()]

    def _pair(self, rng: np.random.Generator) -> tuple[str, str]:
        english = self._sentence(rng)
        source = self.world.to_source_language(english)
        return " ".join(source), " ".join(english)

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        return [
            f"translate : {src} = {tgt} ."
            for src, tgt in (self._pair(rng) for _ in range(n))
        ]

    def examples(self, rng: np.random.Generator, n: int) -> list[GenExample]:
        out = []
        for _ in range(n):
            src, tgt = self._pair(rng)
            out.append(
                GenExample(
                    prompt=f"translate : {src} =",
                    reference=f"{tgt} .",
                    meta={"source": src},
                )
            )
        return out
