"""The five multiple-choice datasets (synthetic equivalents).

Paper counterparts: MMLU (multi-subject knowledge), AI2 ARC
(grade-school science), TruthfulQA (myth avoidance), WinoGrande
(pronoun resolution) and HellaSwag (sentence completion).  All are
evaluated the way the paper describes: "the model scores each option
and chooses the one with the highest score instead of generating
content".

Each generator produces (a) declarative/QA training text teaching the
underlying facts and (b) standardized evaluation items with one correct
option and distractors drawn from the same category.
"""

from __future__ import annotations

import numpy as np

from repro.tasks.base import MCExample, TaskKind
from repro.tasks.world import (
    CAPITALS,
    COUNTRIES,
    EVENTS,
    MYTHS,
    OBJECTS,
    PEOPLE,
    SCIENCE_PROPERTIES,
    World,
)

__all__ = [
    "MMLUTask",
    "ARCTask",
    "TruthfulQATask",
    "WinoGrandeTask",
    "HellaSwagTask",
]


def _choice(rng: np.random.Generator, items: tuple) -> object:
    return items[int(rng.integers(0, len(items)))]


def _distractors(
    rng: np.random.Generator, pool: tuple[str, ...], correct: str, k: int
) -> list[str]:
    candidates = [c for c in pool if c != correct]
    idx = rng.permutation(len(candidates))[:k]
    return [candidates[i] for i in idx]


class MMLUTask:
    """Multi-subject knowledge questions (capitals / residences / jobs)."""

    name = "mmlu"
    kind = TaskKind.MULTIPLE_CHOICE
    metrics = ("accuracy",)
    max_new_tokens = 4

    def __init__(self, world: World) -> None:
        self.world = world

    def _item(self, rng: np.random.Generator) -> tuple[str, str, tuple[str, ...]]:
        subject = int(rng.integers(0, 3))
        if subject == 0:
            country = _choice(rng, COUNTRIES)
            question = f"what is the capital of {country} ?"
            correct = self.world.capital_of[country]
            pool = CAPITALS
        elif subject == 1:
            person = _choice(rng, PEOPLE)
            question = f"where does {person} live ?"
            correct = self.world.lives_in[person]
            pool = CAPITALS
        else:
            person = _choice(rng, PEOPLE)
            question = f"what does {person} work as ?"
            correct = self.world.job_of[person]
            pool = tuple(sorted(set(self.world.job_of.values())))
        return question, correct, pool

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            kind = int(rng.integers(0, 2))
            question, correct, _pool = self._item(rng)
            if kind == 0:
                texts.append(f"question : {question} answer : {correct} .")
            else:
                # Declarative form of the same fact.
                country_like = question.split(" of ")[-1].rstrip(" ?")
                if question.startswith("what is the capital"):
                    texts.append(f"the capital of {country_like} is {correct} .")
                elif question.startswith("where does"):
                    person = question.split()[2]
                    texts.append(f"{person} lives in {correct} .")
                else:
                    person = question.split()[2]
                    texts.append(f"{person} works as a {correct} .")
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[MCExample]:
        out = []
        for _ in range(n):
            question, correct, pool = self._item(rng)
            options = _distractors(rng, pool, correct, 3)
            answer_index = int(rng.integers(0, 4))
            options.insert(answer_index, correct)
            out.append(
                MCExample(
                    prompt=f"question : {question} answer :",
                    options=tuple(f" {o}" for o in options),
                    answer_index=answer_index,
                )
            )
        return out


class ARCTask:
    """Grade-school science: property and capability questions."""

    name = "arc"
    kind = TaskKind.MULTIPLE_CHOICE
    metrics = ("accuracy",)
    max_new_tokens = 4

    def __init__(self, world: World) -> None:
        self.world = world

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            subject, rel, value = SCIENCE_PROPERTIES[
                int(rng.integers(0, len(SCIENCE_PROPERTIES)))
            ]
            if rng.integers(0, 2) == 0:
                texts.append(f"{subject} {rel} {value} .")
            elif rel == "is":
                texts.append(f"question : what is {subject} ? answer : {value} .")
            else:
                texts.append(f"question : what can {subject} do ? answer : {value} .")
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[MCExample]:
        out = []
        values_is = tuple(v for _s, r, v in SCIENCE_PROPERTIES if r == "is")
        values_can = tuple(v for _s, r, v in SCIENCE_PROPERTIES if r == "can")
        for _ in range(n):
            subject, rel, value = SCIENCE_PROPERTIES[
                int(rng.integers(0, len(SCIENCE_PROPERTIES)))
            ]
            pool = values_can if rel == "can" else values_is
            options = _distractors(rng, pool, value, 3)
            answer_index = int(rng.integers(0, 4))
            options.insert(answer_index, value)
            prompt = (
                f"question : what can {subject} do ? answer :"
                if rel == "can"
                else f"question : what is {subject} ? answer :"
            )
            out.append(
                MCExample(
                    prompt=prompt,
                    options=tuple(f" {o}" for o in options),
                    answer_index=answer_index,
                )
            )
        return out


class TruthfulQATask:
    """Myth avoidance: the truthful option vs. a popular misconception.

    Training text states the truth often and mentions the myth rarely
    (always flagged false), mirroring how web corpora make truthful
    continuations likelier but not certain.
    """

    name = "truthfulqa"
    kind = TaskKind.MULTIPLE_CHOICE
    metrics = ("accuracy",)
    max_new_tokens = 6

    def __init__(self, world: World, myth_rate: float = 0.15) -> None:
        self.world = world
        self.myth_rate = myth_rate

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            topic, truth, myth = MYTHS[int(rng.integers(0, len(MYTHS)))]
            if rng.random() < self.myth_rate:
                texts.append(
                    f"some people say that if {topic} then {myth} but that is"
                    f" false ."
                )
            else:
                texts.append(f"question : what happens if {topic} ? answer : {truth} .")
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[MCExample]:
        out = []
        for _ in range(n):
            topic, truth, myth = MYTHS[int(rng.integers(0, len(MYTHS)))]
            answer_index = int(rng.integers(0, 2))
            options = [myth, myth]
            options[answer_index] = truth
            out.append(
                MCExample(
                    prompt=f"question : what happens if {topic} ? answer :",
                    options=tuple(f" {o}" for o in options),
                    answer_index=answer_index,
                )
            )
        return out


class WinoGrandeTask:
    """Pronoun resolution over contrasting object attributes."""

    name = "winogrande"
    kind = TaskKind.MULTIPLE_CHOICE
    metrics = ("accuracy",)
    max_new_tokens = 4

    def __init__(self, world: World) -> None:
        self.world = world
        self._big = tuple(o for o in OBJECTS if world.size_of[o] == "big")
        self._small = tuple(o for o in OBJECTS if world.size_of[o] == "small")

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            if rng.integers(0, 2) == 0:
                obj = _choice(rng, OBJECTS)
                texts.append(f"the {obj} is {self.world.size_of[obj]} .")
            else:
                # Full task-format examples teach the resolution pattern.
                big = _choice(rng, self._big)
                small = _choice(rng, self._small)
                ask_big = bool(rng.integers(0, 2))
                answer = big if ask_big else small
                size = "big" if ask_big else "small"
                texts.append(
                    f"the {big} does not fit in the {small} because it is too"
                    f" {size} . question : what is too {size} ? answer : the"
                    f" {answer} ."
                )
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[MCExample]:
        out = []
        for _ in range(n):
            big = _choice(rng, self._big)
            small = _choice(rng, self._small)
            ask_big = bool(rng.integers(0, 2))
            prompt = (
                f"the {big} does not fit in the {small} because it is too"
                f" {'big' if ask_big else 'small'} . question : what is too"
                f" {'big' if ask_big else 'small'} ? answer : the"
            )
            options = (f" {big}", f" {small}")
            out.append(
                MCExample(
                    prompt=prompt,
                    options=options,
                    answer_index=0 if ask_big else 1,
                )
            )
        return out


class HellaSwagTask:
    """Plausible-continuation selection over event schemas."""

    name = "hellaswag"
    kind = TaskKind.MULTIPLE_CHOICE
    metrics = ("accuracy",)
    max_new_tokens = 4

    def __init__(self, world: World) -> None:
        self.world = world

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            agent, verb, obj = EVENTS[int(rng.integers(0, len(EVENTS)))]
            texts.append(f"the {agent} {verb} the {obj} .")
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[MCExample]:
        objects = tuple(obj for _a, _v, obj in EVENTS)
        out = []
        for _ in range(n):
            agent, verb, obj = EVENTS[int(rng.integers(0, len(EVENTS)))]
            options = _distractors(rng, objects, obj, 3)
            answer_index = int(rng.integers(0, 4))
            options.insert(answer_index, obj)
            out.append(
                MCExample(
                    prompt=f"the {agent} {verb} the",
                    options=tuple(f" {o}" for o in options),
                    answer_index=answer_index,
                )
            )
        return out
