"""tinyBenchmarks-style standardized evaluation subsets.

The paper evaluates 100 standardized inputs per dataset selected by
tinyBenchmarks.  We provide the same facility: a fixed-seed,
task-namespaced subset that every experiment shares, so results are
comparable across campaigns and across runs.
"""

from __future__ import annotations

from repro.tasks.base import Task, rng_for

__all__ = ["standardized_subset", "TINYBENCH_SEED", "TINYBENCH_SIZE"]

TINYBENCH_SEED = 100
TINYBENCH_SIZE = 100


def standardized_subset(task: Task, n: int = TINYBENCH_SIZE, seed: int = TINYBENCH_SEED):
    """Deterministic ``n``-example evaluation slice for ``task``.

    The RNG is namespaced by task name, so adding datasets never
    perturbs existing subsets.
    """
    return task.examples(rng_for(task.name, seed), n)
