"""XLSum-style summarization over generated news-like documents.

Documents are 3-5 sentences about an event; the reference summary is
the lead sentence (the dominant pattern in extractive news
summarization, and what the fine-tuned "Summarizer" model in the paper
specializes in).  Quality is scored with ROUGE-1 / ROUGE-L.
"""

from __future__ import annotations

import numpy as np

from repro.tasks.base import GenExample, TaskKind
from repro.tasks.world import CAPITALS, JOBS, PEOPLE, World

__all__ = ["SummarizationTask"]

_DAYS = ("monday", "tuesday", "friday")
_WEATHER = ("sunny", "rainy")


class SummarizationTask:
    """Summarize a short document into its lead sentence."""

    name = "xlsum"
    kind = TaskKind.GENERATIVE
    metrics = ("rouge1", "rougeL")
    max_new_tokens = 18

    def __init__(self, world: World) -> None:
        self.world = world

    def _doc_and_summary(self, rng: np.random.Generator) -> tuple[str, str]:
        person = PEOPLE[int(rng.integers(0, len(PEOPLE)))]
        job = JOBS[int(rng.integers(0, len(JOBS)))]
        city = CAPITALS[int(rng.integers(0, len(CAPITALS)))]
        day = _DAYS[int(rng.integers(0, len(_DAYS)))]
        weather = _WEATHER[int(rng.integers(0, len(_WEATHER)))]
        lead = f"{person} the {job} visited {city} on {day} ."
        fillers = [
            f"a large crowd of people came to the event .",
            f"the weather that day was {weather} .",
            f"local news reported on the event .",
        ]
        k = 1 + int(rng.integers(0, len(fillers)))
        order = rng.permutation(len(fillers))[:k]
        doc = " ".join([lead, *[fillers[i] for i in order]])
        return doc, lead

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            doc, summary = self._doc_and_summary(rng)
            texts.append(f"summarize : {doc} = {summary}")
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[GenExample]:
        out = []
        for _ in range(n):
            doc, summary = self._doc_and_summary(rng)
            out.append(
                GenExample(
                    prompt=f"summarize : {doc} =",
                    reference=summary,
                    meta={"document": doc},
                )
            )
        return out
