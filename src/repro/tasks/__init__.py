"""Synthetic task suite: nine datasets over one procedurally built world."""

from repro.tasks.base import GenExample, MCExample, Task, TaskKind, rng_for
from repro.tasks.math_task import GSM8kTask, extract_final_answer
from repro.tasks.multiple_choice import (
    ARCTask,
    HellaSwagTask,
    MMLUTask,
    TruthfulQATask,
    WinoGrandeTask,
)
from repro.tasks.qa import SquadTask
from repro.tasks.summarization import SummarizationTask
from repro.tasks.tinybench import TINYBENCH_SEED, TINYBENCH_SIZE, standardized_subset
from repro.tasks.translation import TranslationTask
from repro.tasks.world import World, pseudoword

__all__ = [
    "ARCTask",
    "GSM8kTask",
    "GenExample",
    "HellaSwagTask",
    "MCExample",
    "MMLUTask",
    "SquadTask",
    "SummarizationTask",
    "TINYBENCH_SEED",
    "TINYBENCH_SIZE",
    "Task",
    "TaskKind",
    "TranslationTask",
    "TruthfulQATask",
    "WinoGrandeTask",
    "World",
    "all_tasks",
    "extract_final_answer",
    "pseudoword",
    "rng_for",
    "standardized_subset",
]


def all_tasks(world: World) -> list[Task]:
    """Instantiate the full nine-dataset suite (paper Table 1 order)."""
    return [
        MMLUTask(world),
        ARCTask(world),
        TruthfulQATask(world),
        WinoGrandeTask(world),
        HellaSwagTask(world),
        GSM8kTask(world),
        TranslationTask(world),
        SummarizationTask(world),
        SquadTask(world),
    ]
