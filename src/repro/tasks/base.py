"""Task abstractions shared by all synthetic datasets."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["TaskKind", "MCExample", "GenExample", "Task", "rng_for"]


class TaskKind(enum.Enum):
    """The paper's two task categories (Observation #2 contrasts them)."""

    MULTIPLE_CHOICE = "multiple_choice"
    GENERATIVE = "generative"


@dataclass(frozen=True)
class MCExample:
    """Multiple-choice item: options are scored by sequence likelihood.

    ``prompt`` ends right before where an option would continue, e.g.
    ``"question : what is the capital of france ? answer :"``.
    """

    prompt: str
    options: tuple[str, ...]
    answer_index: int

    def __post_init__(self) -> None:
        if not 0 <= self.answer_index < len(self.options):
            raise ValueError("answer_index out of range")


@dataclass(frozen=True)
class GenExample:
    """Generative item: the model continues ``prompt`` token by token."""

    prompt: str
    reference: str
    meta: dict = field(default_factory=dict, hash=False, compare=False)


@runtime_checkable
class Task(Protocol):
    """A dataset generator: training text + standardized eval examples."""

    name: str
    kind: TaskKind
    metrics: tuple[str, ...]
    max_new_tokens: int

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        """Sample ``n`` training documents (full prompt+completion texts)."""
        ...

    def examples(self, rng: np.random.Generator, n: int) -> list:
        """Sample ``n`` evaluation examples."""
        ...


def rng_for(task_name: str, seed: int) -> np.random.Generator:
    """Namespaced deterministic generator: same (task, seed) -> same data."""
    return np.random.default_rng([seed, *(ord(c) for c in task_name)])
