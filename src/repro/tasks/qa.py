"""SQuAD v2-style extractive question answering.

Contexts are short fact paragraphs; questions ask for a span that
appears verbatim in the context.  Like SQuAD v2, a fraction of the
questions are *unanswerable* from the context — the model must output
"unknown" (our stand-in for SQuAD's empty answer).  Scored with Exact
Match and token-level F1, the paper's SQuAD metrics.

The context relations (who *visited* which city, who *has* which
object) are sampled fresh per example and deliberately have no fixed
world-level ground truth, so the only way to answer is to copy the
span out of the context — genuine extraction, not fact recall.
"""

from __future__ import annotations

import numpy as np

from repro.tasks.base import GenExample, TaskKind
from repro.tasks.world import CAPITALS, OBJECTS, PEOPLE, World

__all__ = ["SquadTask"]


class SquadTask:
    """Extractive QA with unanswerable questions."""

    name = "squadv2"
    kind = TaskKind.GENERATIVE
    metrics = ("exact_match", "f1")
    max_new_tokens = 5

    def __init__(self, world: World, unanswerable_rate: float = 0.25) -> None:
        self.world = world
        self.unanswerable_rate = unanswerable_rate

    def _context(
        self, rng: np.random.Generator
    ) -> tuple[str, list[tuple[str, str, str]]]:
        """Build a 2-3 fact context; returns (text, [(person, kind, answer)])."""
        idx = rng.permutation(len(PEOPLE))[: 2 + int(rng.integers(0, 2))]
        facts: list[tuple[str, str, str]] = []
        sentences = []
        for i in idx:
            person = PEOPLE[i]
            if rng.integers(0, 2) == 0:
                city = CAPITALS[int(rng.integers(0, len(CAPITALS)))]
                sentences.append(f"{person} visited {city} .")
                facts.append((person, "visited", city))
            else:
                obj = OBJECTS[int(rng.integers(0, len(OBJECTS)))]
                sentences.append(f"{person} has a {obj} .")
                facts.append((person, "has", obj))
        return " ".join(sentences), facts

    @staticmethod
    def _question(person: str, kind: str) -> str:
        if kind == "visited":
            return f"where did {person} visit ?"
        return f"what does {person} have ?"

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            context, facts = self._context(rng)
            if rng.random() < self.unanswerable_rate:
                mentioned = {p for p, _k, _a in facts}
                absent = [p for p in PEOPLE if p not in mentioned]
                person = absent[int(rng.integers(0, len(absent)))]
                kind = "visited" if rng.integers(0, 2) == 0 else "has"
                answer = "unknown"
            else:
                person, kind, answer = facts[int(rng.integers(0, len(facts)))]
            texts.append(
                f"context : {context} question :"
                f" {self._question(person, kind)} answer : {answer} ."
            )
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[GenExample]:
        out = []
        for _ in range(n):
            context, facts = self._context(rng)
            if rng.random() < self.unanswerable_rate:
                mentioned = {p for p, _k, _a in facts}
                absent = [p for p in PEOPLE if p not in mentioned]
                person = absent[int(rng.integers(0, len(absent)))]
                kind = "visited" if rng.integers(0, 2) == 0 else "has"
                answer = "unknown"
                answerable = False
            else:
                person, kind, answer = facts[int(rng.integers(0, len(facts)))]
                answerable = True
            out.append(
                GenExample(
                    prompt=(
                        f"context : {context} question :"
                        f" {self._question(person, kind)} answer :"
                    ),
                    reference=f"{answer} .",
                    meta={"answer": answer, "answerable": answerable},
                )
            )
        return out
