"""A procedurally generated micro-world backing all synthetic datasets.

The paper evaluates nine public NLP datasets.  Offline we generate
synthetic equivalents from a single consistent "world": lexicons of
people, places, objects and their attributes, a capital-city atlas, a
science-property table, myth/fact pairs, event schemas, and a
two-language parallel lexicon.  Every dataset generator in
:mod:`repro.tasks` draws from this world, so one pretrained model can
serve all tasks — mirroring how one general-purpose LLM serves all of
the paper's benchmarks.

Everything is deterministic given the construction seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["World", "pseudoword"]

PEOPLE = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "henry",
    "ivy", "jack", "karen", "leo", "mona", "nick", "olga", "paul",
)
COUNTRIES = (
    "france", "england", "italy", "germany", "spain", "austria", "norway",
    "ireland", "portugal", "greece", "egypt", "japan", "india", "peru",
    "kenya", "bulgaria",
)
CAPITALS = (
    "paris", "london", "rome", "berlin", "madrid", "vienna", "oslo",
    "dublin", "lisbon", "athens", "cairo", "tokyo", "delhi", "lima",
    "nairobi", "sofia",
)
ANIMALS = (
    "cat", "dog", "bird", "fish", "horse", "sheep", "lion", "whale",
    "frog", "snake", "eagle", "shark",
)
OBJECTS = (
    "trophy", "suitcase", "ball", "box", "book", "table", "bottle",
    "stone", "feather", "anvil", "pillow", "hammer",
)
JOBS = (
    "baker", "doctor", "farmer", "teacher", "singer", "pilot", "painter",
    "lawyer", "nurse", "chef",
)
COLORS = ("red", "blue", "green", "black", "white", "brown", "yellow", "gray")
ITEMS = ("apples", "pears", "coins", "books", "eggs", "pens", "cards", "shells")

# ARC-style science property table: (subject, relation-phrase, value).
SCIENCE_PROPERTIES = (
    ("fire", "is", "hot"),
    ("ice", "is", "cold"),
    ("stone", "is", "hard"),
    ("a pillow", "is", "soft"),
    ("the sun", "is", "bright"),
    ("the night", "is", "dark"),
    ("snow", "is", "white"),
    ("grass", "is", "green"),
    ("a bird", "can", "fly"),
    ("a fish", "can", "swim"),
    ("a horse", "can", "run"),
    ("a frog", "can", "jump"),
    ("a snake", "can", "crawl"),
    ("a whale", "can", "dive"),
)

# TruthfulQA-style myth/fact pairs: (question topic, truthful answer,
# popular-misconception answer).
MYTHS = (
    ("you touch fire", "you get burned", "you gain luck"),
    ("you drop a stone in water", "it sinks", "it floats away"),
    ("you leave ice in the sun", "it melts", "it grows larger"),
    ("you plant a seed", "a plant grows", "a coin appears"),
    ("you break a mirror", "you have broken glass", "you get seven bad years"),
    ("a snake bites you", "you need a doctor", "you become a snake"),
    ("you eat before swimming", "nothing special happens", "you always sink"),
    ("you crack your knuckles", "you hear a pop", "your bones break forever"),
)

# HellaSwag-style event schemas: (agent, verb, natural object).
EVENTS = (
    ("chef", "cooks", "meal"),
    ("farmer", "grows", "corn"),
    ("singer", "sings", "song"),
    ("painter", "paints", "wall"),
    ("writer", "writes", "letter"),
    ("driver", "drives", "truck"),
    ("baker", "bakes", "bread"),
    ("teacher", "teaches", "class"),
    ("pilot", "flies", "plane"),
    ("nurse", "helps", "patient"),
)

# Content words that the constructed source language translates.
TRANSLATABLE_NOUNS = ANIMALS + ("house", "tree", "river", "bread", "moon", "garden")
TRANSLATABLE_ADJECTIVES = COLORS + ("small", "big", "old", "new")
TRANSLATABLE_VERBS = ("sees", "likes", "finds", "eats", "holds", "brings")

_CONSONANTS = "bdfgklmnprstvz"
_VOWELS = "aeiou"


def pseudoword(word: str, seed: int = 0) -> str:
    """Deterministic pseudo-word for the constructed source language.

    A small hash of the English word seeds a CV-syllable generator, so
    the lexicon is stable across runs and injective in practice for the
    small lexicons used here.
    """
    state = np.random.default_rng(
        [seed, *(ord(c) for c in word)]
    )
    n_syllables = 2 + int(state.integers(0, 2))
    out = []
    for _ in range(n_syllables):
        out.append(_CONSONANTS[int(state.integers(0, len(_CONSONANTS)))])
        out.append(_VOWELS[int(state.integers(0, len(_VOWELS)))])
    return "".join(out)


@dataclass
class World:
    """All lexicons and relations; constructed deterministically."""

    seed: int = 2025
    capital_of: dict[str, str] = field(init=False)
    lives_in: dict[str, str] = field(init=False)
    job_of: dict[str, str] = field(init=False)
    color_of: dict[str, str] = field(init=False)
    size_of: dict[str, str] = field(init=False)
    src_lexicon: dict[str, str] = field(init=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.capital_of = dict(zip(COUNTRIES, CAPITALS))
        self.lives_in = {
            p: CAPITALS[int(rng.integers(0, len(CAPITALS)))] for p in PEOPLE
        }
        self.job_of = {
            p: JOBS[int(rng.integers(0, len(JOBS)))] for p in PEOPLE
        }
        self.color_of = {
            a: COLORS[int(rng.integers(0, len(COLORS)))] for a in ANIMALS
        }
        # Alternate big/small so WinoGrande-style contrasts always exist.
        self.size_of = {
            obj: ("big" if i % 2 == 0 else "small") for i, obj in enumerate(OBJECTS)
        }
        self.src_lexicon = {
            w: pseudoword(w, seed=self.seed)
            for w in (
                *TRANSLATABLE_NOUNS,
                *TRANSLATABLE_ADJECTIVES,
                *TRANSLATABLE_VERBS,
            )
        }
        self.src_lexicon["the"] = "de"
        self.src_lexicon["a"] = "un"

    # -- translation ----------------------------------------------------------

    def to_source_language(self, english_tokens: list[str]) -> list[str]:
        """Translate English tokens into the constructed source language.

        Rule set: word-for-word lexicon substitution plus the source
        language placing adjectives *after* the noun they modify — a
        small reordering so translation is more than token mapping.
        """
        mapped = [self.src_lexicon.get(t, t) for t in english_tokens]
        out = list(mapped)
        i = 0
        while i < len(english_tokens) - 1:
            if (
                english_tokens[i] in TRANSLATABLE_ADJECTIVES
                and english_tokens[i + 1] in TRANSLATABLE_NOUNS
            ):
                out[i], out[i + 1] = out[i + 1], out[i]
                i += 2
            else:
                i += 1
        return out

    # -- vocabulary ------------------------------------------------------------

    def all_tokens(self) -> list[str]:
        """Every surface token any generator can emit (vocab closure)."""
        tokens: list[str] = []
        tokens.extend(PEOPLE)
        tokens.extend(COUNTRIES)
        tokens.extend(CAPITALS)
        tokens.extend(ANIMALS)
        tokens.extend(OBJECTS)
        tokens.extend(JOBS)
        tokens.extend(COLORS)
        tokens.extend(ITEMS)
        for subject, rel, value in SCIENCE_PROPERTIES:
            tokens.extend(subject.split())
            tokens.append(rel)
            tokens.extend(value.split())
        for topic, truth, myth in MYTHS:
            for phrase in (topic, truth, myth):
                tokens.extend(phrase.split())
        for agent, verb, obj in EVENTS:
            tokens.extend((agent, verb, obj))
        tokens.extend(TRANSLATABLE_NOUNS)
        tokens.extend(TRANSLATABLE_ADJECTIVES)
        tokens.extend(TRANSLATABLE_VERBS)
        tokens.extend(self.src_lexicon.values())
        tokens.extend(str(d) for d in range(10))
        tokens.extend(". , ? ! : ; = + - * / ( )".split())
        # Template/function words used by the generators.
        tokens.extend(
            """the a an of is are was in at on to and or not what where who
            which how many much does do did have has had buys gives away more
            live work say some but visit
            now then answer question options option because it too fit lives
            works as can capital city visited monday tuesday friday summary
            summarize translate solve brief context story reported large crowd
            people came event weather that day was sunny rainy local news
            unknown yes no true false happens if when you your step by think
            first find total weight so therefore her his they she he
            continue sentence complete best choice""".split()
        )
        return tokens
