"""GSM8k-style grade-school math with chain-of-thought solutions.

Problems are two-step arithmetic word problems.  The reference solution
exists in two formats, mirroring the paper's CoT experiment (Fig. 20):

* **CoT** ("solve : ... =") — intermediate reasoning steps followed by
  "the answer is N", so faults can corrupt intermediate tokens and the
  model has a chance to recover (Observation #10);
* **direct** ("solve brief : ... =") — only "the answer is N", the
  paper's "output only the final numerical answer" prompt.

Operands stay single-digit (digit tokenization makes two-digit results
two tokens), keeping the arithmetic learnable by a tiny model while
preserving multi-step error propagation (paper Fig. 12).
"""

from __future__ import annotations

import re

import numpy as np

from repro.tasks.base import GenExample, TaskKind
from repro.tasks.world import ITEMS, PEOPLE, World

__all__ = ["GSM8kTask", "extract_final_answer"]

_ANSWER_RE = re.compile(r"the answer is (\d+)")


def extract_final_answer(text: str) -> str | None:
    """Pull the final numeric answer out of a generated solution."""
    # Digit tokens may come out space-separated; merge runs first.
    text = re.sub(r"(?<=\d) (?=\d)", "", text)
    match = _ANSWER_RE.search(text)
    return match.group(1) if match else None


class GSM8kTask:
    """Two-step add-then-subtract word problems."""

    name = "gsm8k"
    kind = TaskKind.GENERATIVE
    metrics = ("accuracy",)
    max_new_tokens = 26

    def __init__(self, world: World, use_cot: bool = True) -> None:
        self.world = world
        self.use_cot = use_cot

    def _problem(
        self, rng: np.random.Generator
    ) -> tuple[str, str, str, int, int, int, int, int]:
        person = PEOPLE[int(rng.integers(0, len(PEOPLE)))]
        item = ITEMS[int(rng.integers(0, len(ITEMS)))]
        a = int(rng.integers(2, 10))
        b = int(rng.integers(2, 10))
        d = a + b
        c = int(rng.integers(1, min(d, 10)))
        e = d - c
        problem = (
            f"{person} has {a} {item} . {person} buys {b} more {item} ."
            f" then {person} gives away {c} {item} . how many {item} does"
            f" {person} have now ?"
        )
        return person, item, problem, a, b, c, d, e

    @staticmethod
    def _cot_solution(a: int, b: int, c: int, d: int, e: int) -> str:
        return f"{a} + {b} = {d} . {d} - {c} = {e} . the answer is {e} ."

    @staticmethod
    def _direct_solution(e: int) -> str:
        return f"the answer is {e} ."

    def training_texts(self, rng: np.random.Generator, n: int) -> list[str]:
        texts = []
        for _ in range(n):
            _p, _i, problem, a, b, c, d, e = self._problem(rng)
            if rng.integers(0, 3) == 0:
                texts.append(f"solve brief : {problem} = {self._direct_solution(e)}")
            else:
                texts.append(f"solve : {problem} = {self._cot_solution(a, b, c, d, e)}")
            # Bare arithmetic drills make the digit arithmetic reliable.
            if rng.integers(0, 2) == 0:
                x, y = int(rng.integers(1, 10)), int(rng.integers(1, 10))
                if rng.integers(0, 2) == 0:
                    texts.append(f"{x} + {y} = {x + y} .")
                elif x + y > 0:
                    texts.append(f"{x + y} - {y} = {x} .")
        return texts

    def examples(self, rng: np.random.Generator, n: int) -> list[GenExample]:
        out = []
        mode = "solve" if self.use_cot else "solve brief"
        for _ in range(n):
            _p, _i, problem, a, b, c, d, e = self._problem(rng)
            reference = (
                self._cot_solution(a, b, c, d, e)
                if self.use_cot
                else self._direct_solution(e)
            )
            out.append(
                GenExample(
                    prompt=f"{mode} : {problem} =",
                    reference=reference,
                    meta={"final_answer": str(e)},
                )
            )
        return out
