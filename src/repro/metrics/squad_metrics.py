"""SQuAD-style Exact Match and token-level F1 (Rajpurkar et al.)."""

from __future__ import annotations

import re
from collections import Counter

__all__ = ["normalize_answer", "exact_match", "token_f1"]

_PUNCT = re.compile(r"[^\w\s]")
_ARTICLES = re.compile(r"\b(a|an|the)\b")
_WS = re.compile(r"\s+")


def normalize_answer(text: str) -> str:
    """SQuAD answer normalization: lowercase, strip punctuation/articles."""
    text = text.lower()
    text = _PUNCT.sub(" ", text)
    text = _ARTICLES.sub(" ", text)
    return _WS.sub(" ", text).strip()


def exact_match(prediction: str, reference: str) -> float:
    """1.0 when normalized strings match exactly, else 0.0."""
    return float(normalize_answer(prediction) == normalize_answer(reference))


def token_f1(prediction: str, reference: str) -> float:
    """Token-overlap F1 in [0, 100] on normalized answers."""
    pred_tokens = normalize_answer(prediction).split()
    ref_tokens = normalize_answer(reference).split()
    if not pred_tokens or not ref_tokens:
        return 100.0 * float(pred_tokens == ref_tokens)
    common = Counter(pred_tokens) & Counter(ref_tokens)
    matched = sum(common.values())
    if matched == 0:
        return 0.0
    precision = matched / len(pred_tokens)
    recall = matched / len(ref_tokens)
    return 100.0 * 2 * precision * recall / (precision + recall)
