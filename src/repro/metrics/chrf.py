"""chrF++ (Popović, 2017): character n-gram F-score plus word n-grams.

chrF++ averages character n-gram F-scores (n = 1..6) with word n-gram
F-scores (n = 1..2), using beta = 2 (recall weighted twice as much as
precision).  This is the paper's second translation metric.
"""

from __future__ import annotations

from collections import Counter

from repro.metrics.bleu import ngram_counts

__all__ = ["chrf_pp", "chrf"]


def _fscore(hyp: Counter, ref: Counter, beta: float) -> float | None:
    """F-beta over two n-gram multisets; None when both are empty."""
    if not hyp and not ref:
        return None
    matched = sum(min(count, ref[gram]) for gram, count in hyp.items())
    hyp_total = sum(hyp.values())
    ref_total = sum(ref.values())
    precision = matched / hyp_total if hyp_total else 0.0
    recall = matched / ref_total if ref_total else 0.0
    if precision + recall == 0.0:
        return 0.0
    b2 = beta * beta
    return (1 + b2) * precision * recall / (b2 * precision + recall)


def chrf_pp(
    hypothesis: str,
    reference: str,
    char_order: int = 6,
    word_order: int = 2,
    beta: float = 2.0,
) -> float:
    """chrF++ score in [0, 100] for one hypothesis/reference pair.

    Whitespace is removed for character n-grams (sacrebleu default).
    """
    hyp_chars = hypothesis.replace(" ", "")
    ref_chars = reference.replace(" ", "")
    hyp_words = hypothesis.split()
    ref_words = reference.split()
    scores: list[float] = []
    for n in range(1, char_order + 1):
        f = _fscore(
            ngram_counts(hyp_chars, n), ngram_counts(ref_chars, n), beta
        )
        if f is not None:
            scores.append(f)
    for n in range(1, word_order + 1):
        f = _fscore(
            ngram_counts(hyp_words, n), ngram_counts(ref_words, n), beta
        )
        if f is not None:
            scores.append(f)
    if not scores:
        return 0.0
    return 100.0 * sum(scores) / len(scores)


def chrf(hypothesis: str, reference: str) -> float:
    """Plain chrF (character n-grams only, n = 1..6)."""
    return chrf_pp(hypothesis, reference, word_order=0)
