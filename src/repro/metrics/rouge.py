"""ROUGE-1 and ROUGE-L (Lin, 2004) for summarization quality.

ROUGE-1 is unigram F1; ROUGE-L is the longest-common-subsequence
F-measure.  Both are reported as percentages matching the paper's
XLSum evaluation.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

__all__ = ["rouge_1", "rouge_l", "lcs_length"]


def _f1(matched: int, hyp_total: int, ref_total: int) -> float:
    if hyp_total == 0 or ref_total == 0:
        return 0.0
    precision = matched / hyp_total
    recall = matched / ref_total
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def rouge_1(hypothesis: Sequence[str], reference: Sequence[str]) -> float:
    """Unigram overlap F1 in [0, 100]."""
    hyp = Counter(hypothesis)
    ref = Counter(reference)
    matched = sum(min(count, ref[tok]) for tok, count in hyp.items())
    return 100.0 * _f1(matched, len(hypothesis), len(reference))


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Longest common subsequence length, O(len(a) * len(b)) DP."""
    if not a or not b:
        return 0
    prev = np.zeros(len(b) + 1, dtype=np.int32)
    curr = np.zeros(len(b) + 1, dtype=np.int32)
    for token in a:
        curr[0] = 0
        for j in range(1, len(b) + 1):
            if token == b[j - 1]:
                curr[j] = prev[j - 1] + 1
            else:
                curr[j] = max(prev[j], curr[j - 1])
        prev, curr = curr, prev
    return int(prev[-1])


def rouge_l(hypothesis: Sequence[str], reference: Sequence[str]) -> float:
    """LCS-based F-measure in [0, 100]."""
    lcs = lcs_length(hypothesis, reference)
    return 100.0 * _f1(lcs, len(hypothesis), len(reference))
