"""Task-level scoring: map generated outputs to the paper's metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.bleu import corpus_bleu
from repro.metrics.chrf import chrf_pp
from repro.metrics.rouge import rouge_1, rouge_l
from repro.metrics.squad_metrics import exact_match, token_f1
from repro.tasks.base import GenExample
from repro.tasks.math_task import extract_final_answer

__all__ = ["score_generative", "METRIC_NAMES"]

METRIC_NAMES = (
    "accuracy",
    "bleu",
    "chrf",
    "rouge1",
    "rougeL",
    "exact_match",
    "f1",
)


def score_generative(
    metrics: Sequence[str],
    predictions: Sequence[str],
    examples: Sequence[GenExample],
) -> dict[str, float]:
    """Score generated ``predictions`` against their examples.

    Returns a dict with one entry per requested metric.  Accuracy (the
    GSM8k metric) compares extracted final answers; the others are
    text-overlap metrics against ``example.reference``.
    """
    if len(predictions) != len(examples):
        raise ValueError("prediction/example count mismatch")
    if not predictions:
        raise ValueError("nothing to score")
    references = [ex.reference for ex in examples]
    out: dict[str, float] = {}
    for metric in metrics:
        if metric == "accuracy":
            hits = [
                float(
                    extract_final_answer(pred) == ex.meta.get("final_answer")
                    and ex.meta.get("final_answer") is not None
                )
                for pred, ex in zip(predictions, examples)
            ]
            out[metric] = 100.0 * float(np.mean(hits))
        elif metric == "bleu":
            out[metric] = corpus_bleu(
                [p.split() for p in predictions], [r.split() for r in references]
            )
        elif metric == "chrf":
            out[metric] = float(
                np.mean([chrf_pp(p, r) for p, r in zip(predictions, references)])
            )
        elif metric == "rouge1":
            out[metric] = float(
                np.mean(
                    [rouge_1(p.split(), r.split()) for p, r in zip(predictions, references)]
                )
            )
        elif metric == "rougeL":
            out[metric] = float(
                np.mean(
                    [rouge_l(p.split(), r.split()) for p, r in zip(predictions, references)]
                )
            )
        elif metric == "exact_match":
            out[metric] = 100.0 * float(
                np.mean([exact_match(p, r) for p, r in zip(predictions, references)])
            )
        elif metric == "f1":
            out[metric] = float(
                np.mean([token_f1(p, r) for p, r in zip(predictions, references)])
            )
        else:
            raise KeyError(f"unknown metric {metric!r}; known: {METRIC_NAMES}")
    return out
