"""Corpus and sentence BLEU (Papineni et al., 2002) with smoothing.

Implements standard BLEU-4: modified n-gram precision with clipping,
geometric mean over n = 1..4, and the brevity penalty.  Smoothing adds
1 to numerator and denominator of higher-order precisions when a
precision would be zero (NIST-style "add-one" smoothing), which is
essential at the short sentence lengths our synthetic tasks produce.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

__all__ = ["bleu", "corpus_bleu", "ngram_counts"]


def ngram_counts(tokens: Sequence[str], n: int) -> Counter:
    """Multiset of n-grams of order ``n``."""
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def _precision_stats(
    hypothesis: Sequence[str], reference: Sequence[str], n: int
) -> tuple[int, int]:
    hyp = ngram_counts(hypothesis, n)
    ref = ngram_counts(reference, n)
    matched = sum(min(count, ref[gram]) for gram, count in hyp.items())
    total = max(0, len(hypothesis) - n + 1)
    return matched, total


def corpus_bleu(
    hypotheses: Sequence[Sequence[str]],
    references: Sequence[Sequence[str]],
    max_n: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus-level BLEU over tokenized hypothesis/reference pairs."""
    if len(hypotheses) != len(references):
        raise ValueError("hypothesis/reference count mismatch")
    if not hypotheses:
        raise ValueError("empty corpus")
    matched = [0] * max_n
    total = [0] * max_n
    hyp_len = 0
    ref_len = 0
    for hyp, ref in zip(hypotheses, references):
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            m, t = _precision_stats(hyp, ref, n)
            matched[n - 1] += m
            total[n - 1] += t
    if hyp_len == 0:
        return 0.0
    log_precisions = []
    for n in range(max_n):
        m, t = matched[n], total[n]
        if t == 0:
            # Hypotheses shorter than n: skip this order entirely
            # (sacrebleu's effective-order behaviour for short sentences).
            continue
        if m == 0:
            if n == 0 or not smooth:
                # No unigram overlap at all: the score is genuinely 0.
                return 0.0
            m, t = 1, t + 1
        log_precisions.append(math.log(m / t))
    if not log_precisions:
        return 0.0
    geo_mean = math.exp(sum(log_precisions) / len(log_precisions))
    bp = 1.0 if hyp_len > ref_len else math.exp(1.0 - ref_len / hyp_len)
    return 100.0 * bp * geo_mean


def bleu(
    hypothesis: Sequence[str], reference: Sequence[str], max_n: int = 4
) -> float:
    """Sentence-level smoothed BLEU."""
    return corpus_bleu([hypothesis], [reference], max_n=max_n, smooth=True)
