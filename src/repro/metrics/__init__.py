"""Output-quality metrics (paper Table 1 column 3)."""

from repro.metrics.bleu import bleu, corpus_bleu, ngram_counts
from repro.metrics.chrf import chrf, chrf_pp
from repro.metrics.evaluate import METRIC_NAMES, score_generative
from repro.metrics.rouge import lcs_length, rouge_1, rouge_l
from repro.metrics.squad_metrics import exact_match, normalize_answer, token_f1

__all__ = [
    "METRIC_NAMES",
    "bleu",
    "chrf",
    "chrf_pp",
    "corpus_bleu",
    "exact_match",
    "lcs_length",
    "ngram_counts",
    "normalize_answer",
    "rouge_1",
    "rouge_l",
    "score_generative",
    "token_f1",
]
