"""Generate EXPERIMENTS.md from archived bench results.

Run after ``pytest benchmarks/ --benchmark-only``: reads the tables in
``artifacts/results/`` and interleaves them with the paper-vs-measured
commentary below.
"""

from __future__ import annotations

from pathlib import Path

from repro.zoo import artifacts_dir

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, the *shape* it
claims, and what this reproduction measures.  The tables below are the
verbatim output of `pytest benchmarks/ --benchmark-only` (also archived
under `artifacts/results/`), run at bench scale — 8 standardized
examples and 36 trials per cell (90 for the breakdown / bit-position /
dtype studies).  The paper uses 100 examples and 500–3000 trials per
cell; `REPRO_BENCH_TRIALS` / `REPRO_BENCH_EXAMPLES` scale the harness
up to that regime.

Substrate reminder (DESIGN.md §2): models are ~0.2–1 M-parameter
Llama-architecture transformers trained from scratch on a synthetic
nine-task world; campaign cells store weights in BF16 (the paper's
evaluation dtype) unless the experiment varies the format.  Absolute
numbers therefore differ from the paper; orderings, gaps and mechanisms
are the reproduction targets.
"""

# (result-file id, paper reference, commentary)
SECTIONS: list[tuple[str, str, str]] = [
    (
        "table1",
        "Table 1 — selected workloads and metrics",
        "Paper: 9 datasets across 5 task groups, each with its metric and"
        " model roster. Measured: the synthetic suite enumerates the same"
        " 9 datasets, metric assignments and per-task model rosters.",
    ),
    (
        "table2",
        "Table 2 — floating-point formats",
        "Paper: FP16 = 1/5/10 bits with range 6e-5..65504; BF16 = 1/8/7"
        " with FP32's ~1e-38..3e38 range. Measured: bit-exact match —"
        " these values come straight from the format registry that the"
        " injectors flip bits in.",
    ),
    (
        "fig03",
        "Figure 3 — overall normalized performance",
        "Paper: average degradation 2.28%, worst 13.09% (memory faults);"
        " degradation varies by task/model/fault. Measured: the table"
        " below spans every task x model x fault cell; memory-fault cells"
        " sit lowest, average degradation is a few percent, and"
        " multiple-choice cells are near 1.0 — the paper's overall shape.",
    ),
    (
        "fig04",
        "Figure 4 — average per fault model",
        "Paper: 2bits-mem degrades most; computational faults are largely"
        " masked (Observation #1). Measured: same ordering — the"
        " 2bits-mem mean normalized performance is the lowest of the"
        " three fault models.",
    ),
    (
        "fig05",
        "Figure 5 — memory-fault propagation trace",
        "Paper: a flipped weight corrupts one **column** of the injected"
        " layer's output, then the whole next-layer tensor. Measured:"
        " exactly one corrupted column (fraction 1.0 in the faulty"
        " column, 0 elsewhere) in up_proj, >90% of down_proj corrupted.",
    ),
    (
        "fig06",
        "Figure 6 — computational-fault propagation trace",
        "Paper: a flipped activation corrupts one **row** (token) and is"
        " contained by normalization. Measured: exactly one corrupted row"
        " in the injected and next layer; corruption entering the next"
        " block stays orders of magnitude below the memory-fault case"
        " (fractions in the table).",
    ),
    (
        "fig07",
        "Figures 7 & 12 — example outputs",
        "Paper: SDCs split into distorted (repeated/meaningless tokens)"
        " and subtly-wrong (fluent but incorrect reasoning). Measured:"
        " campaign trials surface both kinds; the examples below are"
        " actual generations from memory-fault trials on GSM8k.",
    ),
    (
        "fig08",
        "Figure 8 — SDC breakdown (subtle vs distorted)",
        "Paper: subtly-wrong outputs are the majority of SDCs *except*"
        " Qwen2.5 under memory faults; distorted outputs are driven by"
        " memory faults (13.28% vs 0.89–1.21%). Measured: distorted"
        " outputs concentrate under 2bits-mem (computational faults"
        " produce mostly subtle SDCs); as in the paper's Qwen/memory"
        " cell, memory faults at tiny scale skew distorted because a"
        " single corrupted weight is proportionally much larger.",
    ),
    (
        "fig09",
        "Figure 9 — subtle SDCs by highest flipped bit",
        "Paper: bit 14 (the 16-bit value's exponent MSB) is the most"
        " vulnerable position. Measured: SDC-producing trials concentrate"
        " at bits 13–15 with bit 14 leading; low mantissa bits contribute"
        " ~nothing.",
    ),
    (
        "fig10",
        "Figure 10 — distorted outputs by highest flipped bit",
        "Paper: only the top exponent bits produce distorted outputs;"
        " mantissa bits produce zero. Measured: every distorted trial has"
        " its highest flipped bit in the exponent/sign range; all"
        " mantissa-bit rows are zero.",
    ),
    (
        "fig11",
        "Figure 11 — per-task degradation",
        "Paper: TruthfulQA most resilient (~0.04% change), GSM8k most"
        " vulnerable (~3.85% drop); generative tasks degrade more than"
        " multiple-choice (3.2% vs 1.65%, Observation #2). Measured: the"
        " generative-task mean normalized performance is below the"
        " multiple-choice mean (note line under the table); math is among"
        " the most affected tasks.",
    ),
    (
        "fig13",
        "Figure 13 — weight/neuron value distributions",
        "Paper: the three families' down_proj distributions differ"
        " visibly; Falcon3's is widest, correlating with its stability"
        " (Observation #3). Measured: the falconlike family (trained with"
        " the largest init gain and no weight decay) shows the widest"
        " weight and activation spreads; llamalike the narrowest.",
    ),
    (
        "fig14",
        "Figure 14 — MoE vs dense",
        "Paper: MoE slightly worse on multiple-choice, better on"
        " generative tasks (Observation #5). Measured: the generative"
        " cells follow the paper's direction (MoE above its dense twin"
        " on both wmt16 and squadv2; confirmed at 200 trials/cell:"
        " 0.91 vs 0.86 and 0.95 vs 0.84). The multiple-choice cells do"
        " *not* reproduce the paper's direction — our MoE is more"
        " resilient there too (200-trial check: 0.98 vs 0.95 mmlu,"
        " 0.96 vs 0.89 arc). Plausible cause: a fault confined to one of"
        " 8 small experts perturbs option log-likelihoods less than a"
        " fault in the dense twin's only MLP, and the paper's"
        " counter-mechanism (router-mediated whole-tensor corruption"
        " changing expert selections) needs its 18B-scale expert"
        " specialization to dominate.",
    ),
    (
        "fig15",
        "Figure 15 — gate-layer faults",
        "Paper: with 2bits-mem restricted to routers, 78.6% of trials"
        " change the expert selection, 47.4% of those change at least one"
        " output token, BLEU/chrF++ drop ~2% (Observation #6). Measured:"
        " 47% of gate faults flip expert selections, a small subset of"
        " those change the output, and BLEU/chrF++ drop ~1-2% — the same"
        " three-step funnel at somewhat smaller magnitudes (our routers"
        " are 64x8 matrices, so a random 2-bit flip more often lands in"
        " a logit margin too wide to cross).",
    ),
    (
        "fig16",
        "Figure 16 — model scale",
        "Paper: no clear relation between model size and resilience"
        " (Observation #7). Measured: across the 5-point qwenlike sweep"
        " normalized performance shows no monotone trend with d_model.",
    ),
    (
        "fig17",
        "Figure 17 — quantized vs BF16",
        "Paper: GPTQ-4/8-bit variants stay near 100% normalized"
        " performance while BF16 degrades (Observation #8). Measured:"
        " both INT variants sit at 1.0; BF16 degrades by a few percent —"
        " a flipped integer code moves a weight at most ~2^nbits"
        " quantization steps, a flipped BF16 exponent scales it by up to"
        " ~2^128.",
    ),
    (
        "fig18",
        "Figure 18 — beam search vs greedy",
        "Paper: beam search (6 beams) is consistently more resilient than"
        " greedy for the fine-tuned models under 2-bit computational"
        " faults (Observation #9). Measured: beam cells are at or above"
        " the greedy cells on average, with the fine-tuned models showing"
        " the clearest gap.",
    ),
    (
        "fig19",
        "Figure 19 — beam count trade-off",
        "Paper: resilience jumps from 1 to 2 beams then flattens while"
        " runtime keeps growing; optimal trade-off at 2 beams. Measured:"
        " per-trial runtime grows steadily with beam count while"
        " normalized performance saturates after 2 beams.",
    ),
    (
        "fig20",
        "Figure 20 — Chain-of-Thought",
        "Paper: computational faults injected during reasoning barely"
        " change the final answer (normalized ~1.0); with memory faults"
        " CoT still beats direct answering (~0.9) because the model can"
        " recover from corrupted reasoning tokens (Observation #10)."
        " Measured: CoT's memory-fault cells land at 0.92–0.94, close to"
        " the paper's ~0.9; its computational-fault cells land at"
        " 0.83–0.86 rather than ~1.0 — with only ~16 reasoning tokens, a"
        " corrupted intermediate digit leaves less room for recovery"
        " than in the paper's long CoT traces. The *direct* cells are a"
        " documented substrate limit:"
        " our ~0.2M-parameter models cannot do two-step arithmetic"
        " without emitting intermediate tokens (baseline accuracy at"
        " floor, normalized undefined) — an extreme form of the very"
        " effect the paper measures (the no-CoT baseline is worse), but"
        " it means the direct-mode resilience column is not reachable at"
        " this scale.",
    ),
    (
        "fig21",
        "Figure 21 — datatypes",
        "Paper: FP16 most resilient, BF16 most vulnerable; representable"
        " range dominates (Observation #11). Measured: the worst single"
        " cell is BF16's, and the mechanism is bit-exact (a top-exponent"
        " flip takes 0.5 to ~1.7e38 in BF16 but only to 32768 in FP16 —"
        " see examples/storage_formats_study.py). The FP16-vs-BF16 gap"
        " does not separate at this substrate scale (checked up to 300"
        " trials/cell: FP16 0.898 vs BF16 0.901 mean normalized, FP32"
        " 0.961): a 65504-magnitude FP16 blowup already saturates 64-dim"
        " activations just as a 1e38 BF16 one does, so only the"
        " exponent-hit *probability* (which favours FP32's 32-bit"
        " dilution) shows through. The paper's full ordering needs the"
        " magnitude headroom of real-scale models. The activation-format"
        " ablation (below) does show FP16 strictly best for"
        " computational faults.",
    ),
    (
        "layer-vulnerability",
        "Extension — layer/block/bit-role vulnerability profile",
        "Not a paper figure: AVF-style aggregation of campaign trials."
        " Exponent/sign bit faults dominate SDCs; mantissa faults produce"
        " none (consistent with Figs 9/10); per-layer and per-block SDC"
        " rates come with Wilson intervals.",
    ),
    (
        "mitigation-ranger",
        "Extension — Ranger-style range restriction",
        "Implements the paper's 'fault isolation' prescription:"
        " calibrated per-layer clamps contain memory-fault blowups."
        " Measured: distorted-output rate drops and normalized BLEU"
        " improves with clipping enabled.",
    ),
    (
        "mitigation-router",
        "Extension — golden-copy router protection",
        "Implements Observation #6's prescription ('gate layers ..."
        " must be explicitly protected'). Measured: verify-and-restore"
        " before each inference eliminates all gate-fault output changes"
        " at a measured few-KiB memory overhead.",
    ),
    (
        "mitigation-detector",
        "Extension — distorted-output detection coverage",
        "A structural screen flags distorted outputs with high coverage"
        " and near-zero false alarms on masked runs; subtly-wrong SDCs"
        " evade it — quantifying why the paper calls for better quality"
        " metrics.",
    ),
    (
        "ablation-activation-format",
        "Ablation — activation storage format (DESIGN.md §5.2)",
        "Computational faults corrupt activations in the engine's"
        " activation format. Flipping only that format reproduces the"
        " FP16 >= FP32 >= BF16 resilience ordering independently of"
        " weight storage, validating the storage/compute split.",
    ),
    (
        "ablation-router-topk",
        "Ablation — router top-k (DESIGN.md §5.4)",
        "Top-1 routing gives each token a single point of failure;"
        " top-2 dilutes a faulty expert's influence.",
    ),
    (
        "ablation-beam-length-penalty",
        "Ablation — beam length normalization (DESIGN.md §5.3)",
        "Length normalization changes which surviving hypothesis wins"
        " after a corrupted token tanks a path's cumulative probability.",
    ),
    (
        "ablation-trial-count",
        "Ablation — statistical-FI sample size (DESIGN.md §5.5)",
        "CI width shrinks ~1/sqrt(trials), the estimator the paper (and"
        " its [87] citation) uses to size campaigns.",
    ),
]

OBSERVATIONS = """\
## Fidelity summary (paper Observations #1–#11)

| # | Observation (paper) | Reproduced? | Where |
|---|---|---|---|
| 1 | Memory faults are more problematic than computational faults | yes | fig03/fig04: 2bits-mem lowest mean normalized performance; fig05/06: column-vs-row propagation mechanism asserted in tests |
| 2 | Generative tasks degrade more than multiple-choice | yes | fig11 note line: generative mean < multiple-choice mean |
| 3 | Families differ via weight/neuron distributions | yes (direction partly differs) | fig13: falconlike widest spread; at tiny scale the widest-distribution family is not always the most stable cell-by-cell |
| 4 | Fine-tuned models more reliable under memory faults | partially | fig03 wmt16/xlsum rows: alma/summarizer cells at-or-above their base models at bench scale, inside CI |
| 5 | MoE worse on multiple-choice, better on generative | partially | fig14: generative direction reproduced; the multiple-choice direction is not (MoE >= dense at this scale) |
| 6 | Gate faults change expert selection without touching experts | yes | fig15: 47% selection-change rate with ~1-2% BLEU/chrF cost; mitigation-router shows explicit protection closes it entirely |
| 7 | Scale does not determine resilience | yes | fig16: no monotone trend across the 5-size sweep |
| 8 | Quantized models are more reliable | yes | fig17: INT4/INT8 at ~1.0, BF16 below |
| 9 | Beam search beats greedy under computational faults | yes (within CI) | fig18/fig19: beam >= greedy, saturating after 2 beams while runtime grows |
| 10 | CoT increases reliability on reasoning tasks | partially | fig20: CoT memory cells 0.92–0.94 (paper ~0.9); comp cells 0.83–0.86 (paper ~1.0 — short reasoning traces leave less recovery room); the direct-answer column is mostly unreachable — tiny models score ~0 without reasoning tokens, the no-CoT penalty in the extreme |
| 11 | Larger-range dtypes are less reliable (BF16 worst) | partially | fig21: BF16 has the worst single cell and the bit-flip magnitudes are bit-exactly reproduced, but FP16 vs BF16 means stay tied at tiny scale (both saturate 64-dim activations); the activation-format ablation shows FP16 strictly best for computational faults |

Known substrate deviations (documented, expected):

* Absolute SDC rates are higher per fault than the paper's because one
  corrupted weight out of ~10^5 is proportionally much larger than one
  out of ~10^10; normalized orderings are unaffected.
* Distorted outputs form a larger share of memory-fault SDCs than in
  most paper cells (the paper itself sees this skew for Qwen2.5 under
  memory faults).
* TruthfulQA's paper-reported performance *improvement* under
  computational faults cannot appear here: the synthetic baseline is at
  ceiling (100%), so normalized performance is capped at 1.0.
"""


def main() -> None:
    results = artifacts_dir() / "results"
    parts = [HEADER]
    for file_id, title, commentary in SECTIONS:
        path = results / f"{file_id}.txt"
        parts.append(f"\n## {title}\n\n{commentary}\n")
        if path.exists():
            parts.append("```\n" + path.read_text().rstrip() + "\n```\n")
        else:
            parts.append(
                "*(no archived result — run `pytest benchmarks/"
                " --benchmark-only`)*\n"
            )
    parts.append("\n" + OBSERVATIONS)
    out = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
