"""Validate committed ``BENCH_*.json`` benchmark artifacts.

Bench payloads are written by ``benchmarks/conftest.py`` (repo root +
``artifacts/results/`` copies).  They are committed, so a refactor of
the bench harness — or a hand edit — can silently drift their shape
until a downstream reader breaks.  This checker pins the contract:

* strict JSON object with a string ``bench_id`` matching the filename
  (``BENCH_<bench_id>.json``);
* an embedded provenance ``manifest`` that passes the telemetry
  schema check (``kind="manifest"``, current ``schema_version``,
  ``config_hash``, package versions);
* at least one finite numeric measurement outside the manifest;
* bench-specific shape checks where a downstream reader depends on
  one (``BENCH_scaleout.json``: per-fault-model rows with equivalence
  flags, and an ``overall`` block with the speedup/memory numbers the
  README cites; ``BENCH_serve.json``: a passing served-vs-serial
  equivalence gate, a monotonically increasing offered-load sweep with
  finite p50/p99 TTFT/latency fields, and — on full runs — saturation
  throughput >= 2x the serial baseline; ``BENCH_spec_batched.json``:
  a passing pre-timing equivalence gate and, on full runs, composed
  batched-speculative throughput >= 1x batched-alone at every batch
  width >= 4, >= 1.15x at the best such width, and > 2x serial
  overall);
* advisory warnings (``WARN``, never failures) where a number is
  legal but regressive — e.g. ``BENCH_spec.json`` full runs where
  single-sequence speculation loses to plain batching.

Exit status is non-zero on any violation; CI runs this in the tier-1
job.

Usage::

    PYTHONPATH=src python scripts/check_bench.py [FILE ...]
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.obs.manifest import SchemaMismatchError, check_schema

REPO_ROOT = Path(__file__).resolve().parents[1]


def find_bench_files() -> list[Path]:
    """Every committed bench artifact (repo root + artifacts/results)."""
    return sorted(REPO_ROOT.glob("BENCH_*.json")) + sorted(
        (REPO_ROOT / "artifacts" / "results").glob("BENCH_*.json")
    )


def _has_finite_number(value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return math.isfinite(value)
    if isinstance(value, dict):
        return any(_has_finite_number(v) for v in value.values())
    if isinstance(value, list):
        return any(_has_finite_number(v) for v in value)
    return False


# The paper's three fault models; every scale-out row must cover them.
SCALEOUT_FAULT_MODELS = ("1bit-comp", "2bits-comp", "2bits-mem")


def _check_scaleout(payload: dict) -> list[str]:
    """Shape check for the scale-out artifact: the README quotes its
    ``overall`` numbers and CI trusts its equivalence flags, so drift
    here is load-bearing."""
    problems = []
    overall = payload.get("overall")
    if not isinstance(overall, dict):
        return ["scaleout: missing or non-object 'overall'"]
    for key in ("host_cores", "arena_bytes", "model_copy_bytes",
                "best_speedup", "top_workers"):
        value = overall.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            problems.append(f"scaleout: overall.{key} must be a finite number")
    if overall.get("records_bit_identical") is not True:
        problems.append("scaleout: overall.records_bit_identical must be true")
    rows = payload.get("fault_models")
    if not isinstance(rows, dict):
        return problems + ["scaleout: missing or non-object 'fault_models'"]
    for fm in SCALEOUT_FAULT_MODELS:
        row = rows.get(fm)
        if not isinstance(row, dict):
            problems.append(f"scaleout: missing fault model row {fm!r}")
            continue
        for flag in ("records_equal", "resume_equal"):
            if row.get(flag) is not True:
                problems.append(f"scaleout: {fm}.{flag} must be true")
        rate = row.get("trials_per_sec_serial")
        if not isinstance(rate, (int, float)) or not math.isfinite(rate) \
                or rate <= 0:
            problems.append(
                f"scaleout: {fm}.trials_per_sec_serial must be positive"
            )
        if not any(key.startswith("workers_") for key in row):
            problems.append(f"scaleout: {fm} has no pooled 'workers_N' cell")
    return problems


def _finite(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _check_serve(payload: dict) -> list[str]:
    """Shape check for the serving artifact: the README quotes its
    saturation speedup, CI trusts its equivalence gate, and the sweep
    is only meaningful if offered load actually sweeps upward with sane
    percentile fields."""
    problems = []
    equivalence = payload.get("equivalence")
    if not isinstance(equivalence, dict) \
            or equivalence.get("identical") is not True:
        problems.append("serve: equivalence.identical must be true")
    elif not isinstance(equivalence.get("checked"), int) \
            or equivalence["checked"] < 1:
        problems.append("serve: equivalence.checked must be a positive int")
    serial = payload.get("serial")
    if not isinstance(serial, dict) \
            or not _finite(serial.get("tokens_per_sec")) \
            or serial["tokens_per_sec"] <= 0:
        problems.append("serve: serial.tokens_per_sec must be positive")
    sweep = payload.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        return problems + ["serve: missing or empty 'sweep'"]
    previous_rps = 0.0
    for i, point in enumerate(sweep):
        if not isinstance(point, dict):
            problems.append(f"serve: sweep[{i}] must be an object")
            continue
        rps = point.get("offered_rps")
        if not _finite(rps) or rps <= 0:
            problems.append(f"serve: sweep[{i}].offered_rps must be positive")
        elif rps <= previous_rps:
            problems.append(
                f"serve: sweep[{i}].offered_rps must increase monotonically"
            )
        else:
            previous_rps = rps
        if not _finite(point.get("throughput_tps")) \
                or point["throughput_tps"] <= 0:
            problems.append(
                f"serve: sweep[{i}].throughput_tps must be positive"
            )
        for field in ("ttft_ms", "latency_ms"):
            quantiles = point.get(field)
            if not isinstance(quantiles, dict) \
                    or not _finite(quantiles.get("p50")) \
                    or not _finite(quantiles.get("p99")):
                problems.append(
                    f"serve: sweep[{i}].{field} needs finite p50/p99"
                )
            elif quantiles["p99"] < quantiles["p50"]:
                problems.append(
                    f"serve: sweep[{i}].{field}.p99 below p50"
                )
    overall = payload.get("overall")
    if not isinstance(overall, dict):
        return problems + ["serve: missing or non-object 'overall'"]
    if not _finite(overall.get("speedup_vs_serial")):
        problems.append("serve: overall.speedup_vs_serial must be finite")
    elif overall.get("smoke") is not True \
            and overall["speedup_vs_serial"] < 2.0:
        problems.append(
            "serve: full-run saturation throughput must be >= 2x the"
            f" serial baseline, got {overall['speedup_vs_serial']:.2f}x"
        )
    return problems


def _warn_spec(payload: dict) -> list[str]:
    """Advisory check for the speculation-alone artifact: serial-side
    speculation losing to plain batching on a full run is not a schema
    violation, but it is the exact regression the composed decoder
    (``BENCH_spec_batched.json``) exists to fix — surface it."""
    overall = payload.get("overall")
    if not isinstance(overall, dict) or payload.get("smoke") is True:
        return []
    ratio = overall.get("speedup_vs_batched")
    if _finite(ratio) and ratio < 1.0:
        return [
            f"spec: full-run speculation is {ratio:.2f}x plain batching"
            " (< 1.0x) — single-sequence draft-and-verify loses to the"
            " continuous batcher; the composed BENCH_spec_batched path"
            " is the one that should be serving"
        ]
    return []


def _check_spec_batched(payload: dict) -> list[str]:
    """Shape + floor check for the composed batched-speculative
    artifact: the pre-timing equivalence gate must have passed, the
    batch sweep must be well-formed, and on full runs the composed
    decoder must not lose to batched-alone at any batch width >= 4,
    must beat it >= 1.15x at its best wide point, and must beat serial
    by > 2x overall."""
    problems = []
    equivalence = payload.get("equivalence")
    if not isinstance(equivalence, dict) \
            or equivalence.get("identical") is not True:
        problems.append("spec_batched: equivalence.identical must be true")
    elif not isinstance(equivalence.get("checked"), int) \
            or equivalence["checked"] < 1:
        problems.append(
            "spec_batched: equivalence.checked must be a positive int"
        )
    sweep = payload.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        return problems + ["spec_batched: missing or empty 'sweep'"]
    full = payload.get("smoke") is not True
    saw_wide = False
    wide_ratios = []
    for i, point in enumerate(sweep):
        if not isinstance(point, dict):
            problems.append(f"spec_batched: sweep[{i}] must be an object")
            continue
        batch = point.get("batch")
        if not isinstance(batch, int) or batch < 1:
            problems.append(
                f"spec_batched: sweep[{i}].batch must be a positive int"
            )
            continue
        for key in ("tokens_per_sec_batched", "tokens_per_sec_composed",
                    "speedup_composed_vs_batched"):
            if not _finite(point.get(key)) or point[key] <= 0:
                problems.append(
                    f"spec_batched: sweep[{i}].{key} must be positive"
                )
        ratio = point.get("speedup_composed_vs_batched")
        if batch >= 4:
            saw_wide = True
            if _finite(ratio):
                wide_ratios.append(ratio)
            # The floor the composition exists for: at real batch
            # widths the composed decoder must not lose to batching
            # alone (full runs only; smoke boxes are too noisy).
            if full and _finite(ratio) and ratio < 1.0:
                problems.append(
                    f"spec_batched: composed decoder is {ratio:.2f}x"
                    f" batched-alone at B={batch} (full-run floor is"
                    " >= 1.0x)"
                )
    if not saw_wide:
        problems.append("spec_batched: sweep has no batch >= 4 point")
    elif full and wide_ratios and max(wide_ratios) < 1.15:
        problems.append(
            f"spec_batched: composed decoder peaks at {max(wide_ratios):.2f}x"
            " batched-alone across batch widths >= 4 (full-run floor is"
            " >= 1.15x at the best wide point)"
        )
    overall = payload.get("overall")
    if not isinstance(overall, dict):
        return problems + ["spec_batched: missing or non-object 'overall'"]
    if not _finite(overall.get("speedup_vs_serial")):
        problems.append("spec_batched: overall.speedup_vs_serial must be finite")
    elif full and overall["speedup_vs_serial"] <= 2.0:
        problems.append(
            "spec_batched: full-run composed throughput must be > 2x the"
            f" serial baseline, got {overall['speedup_vs_serial']:.2f}x"
        )
    return problems


BENCH_CHECKS = {
    "scaleout": _check_scaleout,
    "serve": _check_serve,
    "spec_batched": _check_spec_batched,
}

# Advisory checks: printed as WARN lines, never counted as failures.
BENCH_WARNINGS = {"spec": _warn_spec}


def check_bench_file(path: Path, warnings: "list[str] | None" = None) -> list[str]:
    """Validate one artifact; returns a list of problems (empty = ok).
    Advisory findings are appended to ``warnings`` when provided."""
    problems = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    bench_id = payload.get("bench_id")
    if not isinstance(bench_id, str) or not bench_id:
        problems.append("missing or non-string 'bench_id'")
    elif path.name != f"BENCH_{bench_id}.json":
        problems.append(
            f"filename does not match bench_id: expected"
            f" BENCH_{bench_id}.json, found {path.name}"
        )
    manifest = payload.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("missing or non-object 'manifest'")
    else:
        try:
            check_schema(manifest, path)
        except (ValueError, SchemaMismatchError) as exc:
            problems.append(f"manifest fails schema check: {exc}")
        if manifest.get("kind") != "manifest":
            problems.append(
                f"manifest 'kind' must be 'manifest',"
                f" got {manifest.get('kind')!r}"
            )
        for key in ("config_hash", "git_rev", "packages"):
            if key not in manifest:
                problems.append(f"manifest missing '{key}'")
    measurements = {
        k: v for k, v in payload.items() if k not in ("manifest", "bench_id")
    }
    if not _has_finite_number(measurements):
        problems.append("no finite numeric measurement outside the manifest")
    extra_check = BENCH_CHECKS.get(bench_id) if isinstance(bench_id, str) else None
    if extra_check is not None:
        problems.extend(extra_check(payload))
    if warnings is not None and isinstance(bench_id, str):
        warn_check = BENCH_WARNINGS.get(bench_id)
        if warn_check is not None:
            warnings.extend(warn_check(payload))
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    paths = [Path(p) for p in args] or find_bench_files()
    if not paths:
        print("check_bench: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        warnings: list[str] = []
        problems = check_bench_file(path, warnings)
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            rel = path
        for warning in warnings:
            print(f"WARN {rel}: {warning}", file=sys.stderr)
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {rel}: {problem}", file=sys.stderr)
        else:
            print(f"ok   {rel}")
    if failures:
        print(f"check_bench: {failures}/{len(paths)} artifacts invalid",
              file=sys.stderr)
        return 1
    print(f"check_bench: {len(paths)} artifacts valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
