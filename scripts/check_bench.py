"""Validate committed ``BENCH_*.json`` benchmark artifacts.

Bench payloads are written by ``benchmarks/conftest.py`` (repo root +
``artifacts/results/`` copies).  They are committed, so a refactor of
the bench harness — or a hand edit — can silently drift their shape
until a downstream reader breaks.  This checker pins the contract:

* strict JSON object with a string ``bench_id`` matching the filename
  (``BENCH_<bench_id>.json``);
* an embedded provenance ``manifest`` that passes the telemetry
  schema check (``kind="manifest"``, current ``schema_version``,
  ``config_hash``, package versions);
* at least one finite numeric measurement outside the manifest.

Exit status is non-zero on any violation; CI runs this in the tier-1
job.

Usage::

    PYTHONPATH=src python scripts/check_bench.py [FILE ...]
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.obs.manifest import SchemaMismatchError, check_schema

REPO_ROOT = Path(__file__).resolve().parents[1]


def find_bench_files() -> list[Path]:
    """Every committed bench artifact (repo root + artifacts/results)."""
    return sorted(REPO_ROOT.glob("BENCH_*.json")) + sorted(
        (REPO_ROOT / "artifacts" / "results").glob("BENCH_*.json")
    )


def _has_finite_number(value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return math.isfinite(value)
    if isinstance(value, dict):
        return any(_has_finite_number(v) for v in value.values())
    if isinstance(value, list):
        return any(_has_finite_number(v) for v in value)
    return False


def check_bench_file(path: Path) -> list[str]:
    """Validate one artifact; returns a list of problems (empty = ok)."""
    problems = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    bench_id = payload.get("bench_id")
    if not isinstance(bench_id, str) or not bench_id:
        problems.append("missing or non-string 'bench_id'")
    elif path.name != f"BENCH_{bench_id}.json":
        problems.append(
            f"filename does not match bench_id: expected"
            f" BENCH_{bench_id}.json, found {path.name}"
        )
    manifest = payload.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("missing or non-object 'manifest'")
    else:
        try:
            check_schema(manifest, path)
        except (ValueError, SchemaMismatchError) as exc:
            problems.append(f"manifest fails schema check: {exc}")
        if manifest.get("kind") != "manifest":
            problems.append(
                f"manifest 'kind' must be 'manifest',"
                f" got {manifest.get('kind')!r}"
            )
        for key in ("config_hash", "git_rev", "packages"):
            if key not in manifest:
                problems.append(f"manifest missing '{key}'")
    measurements = {
        k: v for k, v in payload.items() if k not in ("manifest", "bench_id")
    }
    if not _has_finite_number(measurements):
        problems.append("no finite numeric measurement outside the manifest")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    paths = [Path(p) for p in args] or find_bench_files()
    if not paths:
        print("check_bench: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        problems = check_bench_file(path)
        try:
            rel = path.relative_to(REPO_ROOT)
        except ValueError:
            rel = path
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {rel}: {problem}", file=sys.stderr)
        else:
            print(f"ok   {rel}")
    if failures:
        print(f"check_bench: {failures}/{len(paths)} artifacts invalid",
              file=sys.stderr)
        return 1
    print(f"check_bench: {len(paths)} artifacts valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
