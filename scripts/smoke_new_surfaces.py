"""Runtime-surface fault-model smoke: KV cache, accumulator, speculation.

Runs one tiny campaign per new fault model — serial and under a
2-worker pool — and holds the two executions bit-identical via the
differential oracle, then runs the draft-vs-target speculation study
and asserts the masking theorem on the measured rates (draft-side
faults never produce SDCs; the masking rate over fired trials is 1.0).

Everything is built in-memory (untrained tiny models): the smoke
proves mechanics and execution-path equivalence, not model quality.

Usage::

    PYTHONPATH=src python scripts/smoke_new_surfaces.py [--trials N]
"""

from __future__ import annotations

import argparse
import sys

from repro.fi import (
    FaultModel,
    FICampaign,
    assert_results_equal,
    by_surface,
    speculation_masking,
)
from repro.generation import GenerationConfig
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.tasks import TranslationTask, World, standardized_subset
from repro.training import build_tokenizer

NEW_MODELS = (
    FaultModel.KV_1BIT,
    FaultModel.KV_2BIT,
    FaultModel.ACC_1BIT,
    FaultModel.ACC_2BIT,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=6)
    args = parser.parse_args(argv)

    world = World(seed=2025)
    tokenizer = build_tokenizer(world)
    config = ModelConfig(
        vocab_size=len(tokenizer),
        d_model=32,
        n_heads=4,
        n_blocks=2,
        d_ff=48,
        max_seq=160,
    )
    target_store = TransformerLM(config, seed=5).to_store()
    draft_store = TransformerLM(config, seed=21).to_store()
    task = TranslationTask(world)

    def campaign(fault_model: FaultModel, **kw) -> FICampaign:
        return FICampaign(
            engine=InferenceEngine(target_store),
            tokenizer=tokenizer,
            task_name=task.name,
            metrics=task.metrics,
            examples=standardized_subset(task, 3),
            fault_model=fault_model,
            seed=9,
            generation=GenerationConfig(
                max_new_tokens=task.max_new_tokens,
                eos_id=tokenizer.vocab.eos_id,
            ),
            **kw,
        )

    for fault_model in NEW_MODELS:
        serial = campaign(fault_model).run(args.trials)
        pooled = campaign(fault_model).run(args.trials, n_workers=2)
        assert_results_equal(pooled, serial, "pooled", "serial")
        (group,) = by_surface(serial)
        fired = sum(t.fired for t in serial.trials)
        print(
            f"{fault_model.value}: {serial.n_trials} trials on"
            f" {group.group}, {fired} fired,"
            f" sdc_rate={serial.sdc_rate:.2f} (serial == 2 workers)"
        )

    for side in ("draft", "target"):
        spec = dict(
            draft_model=InferenceEngine(draft_store),
            spec_fault_side=side,
        )
        serial = campaign(FaultModel.KV_1BIT, **spec).run(args.trials)
        pooled = campaign(FaultModel.KV_1BIT, **spec).run(
            args.trials, n_workers=2
        )
        assert_results_equal(pooled, serial, "pooled", "serial")
        row = speculation_masking(serial)[side]
        print(
            f"speculation/{side}: {row['fired']}/{row['trials']} fired,"
            f" masking_rate={row['masking_rate']:.2f}, sdc={row['sdc']}"
        )
        if side == "draft" and row["fired"] and row["masking_rate"] != 1.0:
            print("FAIL: draft-side fault escaped verification", file=sys.stderr)
            return 1

    print("new-surface smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
