"""Quick traced-campaign smoke: train a tiny model in-memory, run a
fault-injection campaign with telemetry enabled, export the run JSONL
and render its report.

Used by CI (and handy locally) to prove the full observability path —
engine per-layer timing, decode metrics, campaign trial spans, worker
merge, manifest, reporter — without depending on cached zoo artifacts.

``--flight`` additionally arms the per-trial flight recorder and
asserts one forensic record per trial lands in the exported run — the
input for ``repro obs explain`` / ``repro obs export-trace`` in the CI
forensics job.

Usage::

    PYTHONPATH=src python scripts/smoke_campaign.py [out.jsonl] \
        [--workers N] [--flight]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.fi import FaultModel, FICampaign
from repro.generation import GenerationConfig
from repro.inference import InferenceEngine
from repro.model import ModelConfig, TransformerLM
from repro.obs import flight_recorder, report_path, telemetry
from repro.tasks import TranslationTask, World, all_tasks, standardized_subset
from repro.training import (
    TrainConfig,
    build_mixed_corpus,
    build_tokenizer,
    corpus_to_stream,
    train_lm,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out", nargs="?", default=None, help="run JSONL path")
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument(
        "--flight",
        action="store_true",
        help="arm the per-trial flight recorder and assert its records",
    )
    args = parser.parse_args(argv)
    out = Path(
        args.out or Path(tempfile.gettempdir()) / "repro_smoke_run.jsonl"
    )

    world = World(seed=2025)
    tokenizer = build_tokenizer(world)
    rng = np.random.default_rng(99)
    docs = build_mixed_corpus(all_tasks(world), rng, 1500)
    stream = corpus_to_stream(docs, tokenizer)
    model = TransformerLM(
        ModelConfig(
            vocab_size=len(tokenizer),
            d_model=48,
            n_heads=4,
            n_blocks=3,
            d_ff=96,
            max_seq=160,
        ),
        seed=7,
    )

    tel = telemetry()
    tel.enable(out)
    train_lm(
        model,
        stream,
        TrainConfig(steps=160, batch_size=12, seq_len=56, seed=3, lr=4e-3),
    )
    engine = InferenceEngine(model.to_store(), weight_policy="bf16")

    task = TranslationTask(world)
    campaign = FICampaign(
        engine=engine,
        tokenizer=tokenizer,
        task_name=task.name,
        metrics=task.metrics,
        examples=standardized_subset(task, 4),
        fault_model=FaultModel.MEM_2BIT,
        seed=11,
        generation=GenerationConfig(
            max_new_tokens=task.max_new_tokens,
            eos_id=tokenizer.vocab.eos_id,
        ),
    )
    recorder = flight_recorder()
    if args.flight:
        recorder.reset()
        recorder.arm()
    result = campaign.run(args.trials, n_workers=args.workers)
    flight_records = recorder.drain() if args.flight else []
    recorder.disarm()
    tel.flush(
        seed=11,
        config={"task": task.name, "trials": args.trials, "smoke": True},
        command="smoke-campaign",
        extra_records=flight_records,
    )
    print(report_path(out))

    # The smoke fails loudly if the telemetry stream is missing any of
    # the signals the acceptance criteria require.
    counters = tel.metrics.counters
    assert counters["campaign.trials"].value == args.trials
    assert result.n_trials == args.trials
    assert any(
        name.startswith("engine.layer_ms.") for name in tel.metrics.histograms
    ), "per-layer timing missing"
    assert tel.metrics.histogram("campaign.trial_ms").count == args.trials
    assert counters["decode.tokens"].value > 0
    assert any(
        name.startswith("campaign.outcome.") for name in counters
    ), "outcome tallies missing"
    if args.flight:
        assert len(flight_records) == args.trials, (
            f"expected {args.trials} flight records,"
            f" got {len(flight_records)}"
        )
        assert all(r.get("front") for r in flight_records), (
            "flight records missing corruption fronts"
        )
        print(
            f"flight: {len(flight_records)} records"
            f" ({sum(1 for r in flight_records if r['outcome'] != 'masked')}"
            " non-masked)",
            file=sys.stderr,
        )
    print(f"\nsmoke ok: {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
