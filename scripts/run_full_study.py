"""One-command full reproduction driver.

Builds the model zoo (cached), runs every paper experiment at the
requested scale, archives each result table under
``artifacts/results/`` and regenerates EXPERIMENTS.md.

    python scripts/run_full_study.py                # bench scale (~30 min)
    python scripts/run_full_study.py --trials 500 --examples 50   # paper-ish
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

from repro.harness import ExperimentContext, format_table
from repro.harness import experiments as E
from repro.zoo import artifacts_dir, load_model, zoo_names

EXPERIMENTS = [
    E.table1_workloads,
    E.table2_formats,
    E.fig03_overall,
    E.fig04_fault_models,
    E.fig05_memory_propagation,
    E.fig06_computational_propagation,
    E.fig07_output_examples,
    E.fig08_sdc_breakdown,
    E.fig09_bit_positions_subtle,
    E.fig10_bit_positions_distorted,
    E.fig11_per_task,
    E.fig13_weight_distributions,
    E.fig14_moe_vs_dense,
    E.fig15_gate_faults,
    E.fig16_model_scale,
    E.fig17_quantization,
    E.fig18_beam_vs_greedy,
    E.fig19_beam_tradeoff,
    E.fig20_chain_of_thought,
    E.fig21_dtypes,
]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=36)
    parser.add_argument("--examples", type=int, default=8)
    parser.add_argument("--seed", type=int, default=20251116)
    parser.add_argument("--skip-build", action="store_true")
    args = parser.parse_args()

    if not args.skip_build:
        for name in zoo_names():
            load_model(name)

    ctx = ExperimentContext(
        n_examples=args.examples, n_trials=args.trials, seed=args.seed
    )
    results_dir = artifacts_dir() / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.time()
    for fn in EXPERIMENTS:
        start = time.time()
        result = fn(ctx)
        text = format_table(result)
        (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
        print(text)
        print(f"[{result.experiment_id} done in {time.time() - start:.0f}s,"
              f" total {time.time() - t0:.0f}s]\n", flush=True)

    # Regenerate the paper-vs-measured report.
    script = Path(__file__).with_name("write_experiments_md.py")
    subprocess.run([sys.executable, str(script)], check=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
