"""Build every zoo model into the artifacts cache (one-time, ~1h CPU)."""
import time
from repro.zoo import load_model, zoo_names

t0 = time.time()
for name in zoo_names():
    print(f"=== building {name} (t={time.time()-t0:.0f}s) ===", flush=True)
    store = load_model(name, verbose=True)
    print(f"=== {name} cached, {store.n_params()} params ===", flush=True)
print(f"ALL ZOO MODELS BUILT in {time.time()-t0:.0f}s", flush=True)
