"""Legacy setup shim: the offline environment lacks the `wheel` package
PEP 660 editable installs need, so `pip install -e .` falls back to this
setup.py-based develop install."""
from setuptools import setup

setup()
